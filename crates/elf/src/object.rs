//! The [`ElfObject`] model and its builder.

use serde::{Deserialize, Serialize};

use crate::machine::Machine;
use crate::symbols::Symbol;

/// Where a future-loader search entry is injected (§III-C's proposal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchPosition {
    /// Before the environment's paths — the packager's pin.
    Prepend,
    /// After the environment's paths — a user-overridable default.
    Append,
}

/// One entry of the §III-C future-loader search space: a directory, where
/// it sits relative to the environment, and whether dependencies inherit it.
/// "All but one of the problems listed in Section III-A can be solved by
/// offering prepend/append and a boolean propagation flag on each path."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchDir {
    pub dir: String,
    pub position: SearchPosition,
    pub inherit: bool,
}

/// A per-dependency binding: "the ability to dictate the search space per
/// shared object" — the final §III-A issue (Fig 3) dissolves when a soname
/// can be mapped to an exact path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepPin {
    pub soname: String,
    pub path: String,
}

/// Executable vs shared object (`ET_EXEC`/`ET_DYN` with an interp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    Executable,
    SharedObject,
}

impl ObjectKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            ObjectKind::Executable => "exe",
            ObjectKind::SharedObject => "dso",
        }
    }

    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "exe" => Some(ObjectKind::Executable),
            "dso" => Some(ObjectKind::SharedObject),
            _ => None,
        }
    }
}

/// The dynamic-linking-relevant content of an ELF file.
///
/// `name` is a human label (usually the file's basename); the loader never
/// consults it — resolution uses `soname` and `needed` only, exactly like
/// the real loader.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElfObject {
    pub name: String,
    pub kind: ObjectKind,
    pub machine: Machine,
    /// `DT_SONAME` — what this object answers to in the loader's dedup cache.
    pub soname: Option<String>,
    /// `DT_NEEDED` entries in link order. Entries containing `/` are loaded
    /// by path directly (Shrinkwrap's output); bare names are searched.
    pub needed: Vec<String>,
    /// `DT_RPATH` search directories (colon-joined in real ELF; kept split).
    pub rpath: Vec<String>,
    /// `DT_RUNPATH` search directories.
    pub runpath: Vec<String>,
    /// `PT_INTERP` — the program interpreter, executables only.
    pub interp: Option<String>,
    /// Defined dynamic symbols (only populated where a scenario needs them).
    pub symbols: Vec<Symbol>,
    /// Undefined symbols this object imports (used by interposition checks).
    pub undefined: Vec<String>,
    /// Libraries this object `dlopen`s at runtime. Not a real ELF field —
    /// simulation metadata standing in for the behaviour of plugin systems
    /// (Qt, Python extension modules, MPI transport plugins).
    pub dlopens: Vec<String>,
    /// Virtual on-disk size in bytes beyond the serialized header, modelling
    /// large binaries (the paper wraps a 213 MiB executable). Affects read
    /// cost, not semantics.
    pub virtual_size: u64,
    /// §III-C future-loader search entries (ignored by the glibc/musl
    /// models; interpreted by `depchaos_loader::future`).
    pub search_dirs: Vec<SearchDir>,
    /// §III-C per-dependency pins (future loader only).
    pub pins: Vec<DepPin>,
}

impl ElfObject {
    /// Start building an executable.
    pub fn exe(name: impl Into<String>) -> ObjectBuilder {
        ObjectBuilder::new(name, ObjectKind::Executable)
    }

    /// Start building a shared object. The soname defaults to `name`.
    pub fn dso(name: impl Into<String>) -> ObjectBuilder {
        let name = name.into();
        let mut b = ObjectBuilder::new(name.clone(), ObjectKind::SharedObject);
        b.obj.soname = Some(name);
        b
    }

    /// The name the loader's dedup cache indexes this object under:
    /// `DT_SONAME` if present, else the file basename at load time.
    pub fn effective_soname(&self) -> &str {
        self.soname.as_deref().unwrap_or(&self.name)
    }

    /// True if any `needed` entry is a path (contains `/`) — i.e. the object
    /// has been shrinkwrapped or hand-pinned.
    pub fn has_absolute_needed(&self) -> bool {
        self.needed.iter().any(|n| n.contains('/'))
    }

    /// The search-path entries in effect for this object, with the
    /// RPATH-ignored-when-RUNPATH-set rule applied locally. (Propagation
    /// rules live in the loader.)
    pub fn own_search_paths(&self) -> &[String] {
        if self.runpath.is_empty() {
            &self.rpath
        } else {
            &self.runpath
        }
    }
}

/// Fluent builder for [`ElfObject`].
#[derive(Debug, Clone)]
pub struct ObjectBuilder {
    obj: ElfObject,
}

impl ObjectBuilder {
    fn new(name: impl Into<String>, kind: ObjectKind) -> Self {
        let interp = match kind {
            ObjectKind::Executable => Some("/lib64/ld-linux-x86-64.so.2".to_string()),
            ObjectKind::SharedObject => None,
        };
        ObjectBuilder {
            obj: ElfObject {
                name: name.into(),
                kind,
                machine: Machine::default(),
                soname: None,
                needed: Vec::new(),
                rpath: Vec::new(),
                runpath: Vec::new(),
                interp,
                symbols: Vec::new(),
                undefined: Vec::new(),
                dlopens: Vec::new(),
                virtual_size: 0,
                search_dirs: Vec::new(),
                pins: Vec::new(),
            },
        }
    }

    pub fn machine(mut self, m: Machine) -> Self {
        self.obj.machine = m;
        self
    }

    pub fn soname(mut self, s: impl Into<String>) -> Self {
        self.obj.soname = Some(s.into());
        self
    }

    /// Remove the soname (some hand-built libraries lack one; the loader
    /// then dedups on basename).
    pub fn no_soname(mut self) -> Self {
        self.obj.soname = None;
        self
    }

    pub fn needs(mut self, n: impl Into<String>) -> Self {
        self.obj.needed.push(n.into());
        self
    }

    pub fn needs_all<I, S>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.obj.needed.extend(it.into_iter().map(Into::into));
        self
    }

    pub fn rpath(mut self, p: impl Into<String>) -> Self {
        self.obj.rpath.push(p.into());
        self
    }

    pub fn rpath_all<I, S>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.obj.rpath.extend(it.into_iter().map(Into::into));
        self
    }

    pub fn runpath(mut self, p: impl Into<String>) -> Self {
        self.obj.runpath.push(p.into());
        self
    }

    pub fn runpath_all<I, S>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.obj.runpath.extend(it.into_iter().map(Into::into));
        self
    }

    pub fn interp(mut self, p: impl Into<String>) -> Self {
        self.obj.interp = Some(p.into());
        self
    }

    pub fn defines(mut self, sym: Symbol) -> Self {
        self.obj.symbols.push(sym);
        self
    }

    pub fn imports(mut self, name: impl Into<String>) -> Self {
        self.obj.undefined.push(name.into());
        self
    }

    pub fn dlopens(mut self, name: impl Into<String>) -> Self {
        self.obj.dlopens.push(name.into());
        self
    }

    pub fn virtual_size(mut self, bytes: u64) -> Self {
        self.obj.virtual_size = bytes;
        self
    }

    /// Add a §III-C future-loader search entry.
    pub fn search_dir(
        mut self,
        dir: impl Into<String>,
        position: SearchPosition,
        inherit: bool,
    ) -> Self {
        self.obj.search_dirs.push(SearchDir { dir: dir.into(), position, inherit });
        self
    }

    /// Pin a dependency to an exact path (§III-C per-object resolution).
    pub fn pin(mut self, soname: impl Into<String>, path: impl Into<String>) -> Self {
        self.obj.pins.push(DepPin { soname: soname.into(), path: path.into() });
        self
    }

    pub fn build(self) -> ElfObject {
        self.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let exe = ElfObject::exe("app").build();
        assert_eq!(exe.kind, ObjectKind::Executable);
        assert!(exe.interp.is_some());
        assert!(exe.soname.is_none());
        assert_eq!(exe.effective_soname(), "app");

        let dso = ElfObject::dso("libfoo.so.1").build();
        assert_eq!(dso.kind, ObjectKind::SharedObject);
        assert_eq!(dso.soname.as_deref(), Some("libfoo.so.1"));
        assert!(dso.interp.is_none());
    }

    #[test]
    fn runpath_shadows_rpath_locally() {
        let o = ElfObject::dso("l").rpath("/a").runpath("/b").build();
        assert_eq!(o.own_search_paths(), &["/b".to_string()]);
        let o2 = ElfObject::dso("l").rpath("/a").build();
        assert_eq!(o2.own_search_paths(), &["/a".to_string()]);
    }

    #[test]
    fn absolute_needed_detection() {
        let o = ElfObject::exe("a").needs("libx.so").build();
        assert!(!o.has_absolute_needed());
        let o2 = ElfObject::exe("a").needs("/usr/lib/libx.so").build();
        assert!(o2.has_absolute_needed());
    }

    #[test]
    fn needs_all_preserves_order() {
        let o = ElfObject::exe("a").needs_all(["l1", "l2", "l3"]).build();
        assert_eq!(o.needed, vec!["l1", "l2", "l3"]);
    }
}

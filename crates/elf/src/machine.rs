//! ELF machine architectures (`e_machine`).
//!
//! The dynamic loader silently skips search-path candidates whose machine
//! does not match the requesting object — a major source of wasted probes on
//! multi-ABI systems (x86 + x86_64), and a corner case Shrinkwrap's *native*
//! resolution strategy must replicate faithfully (§IV).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Architectures the simulation distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Machine {
    /// x86-64 (EM_X86_64) — the default everywhere in the workloads.
    #[default]
    X86_64,
    /// 32-bit x86 (EM_386) — the classic multilib pollution source.
    X86,
    /// AArch64 (EM_AARCH64).
    Aarch64,
    /// ppc64le (EM_PPC64) — Sierra/Lassen nodes in the paper are POWER9.
    Ppc64le,
}

impl Machine {
    /// Canonical lowercase name used in the serialised format.
    pub fn as_str(&self) -> &'static str {
        match self {
            Machine::X86_64 => "x86_64",
            Machine::X86 => "x86",
            Machine::Aarch64 => "aarch64",
            Machine::Ppc64le => "ppc64le",
        }
    }

    /// Parse the canonical name.
    pub fn from_str_opt(s: &str) -> Option<Machine> {
        match s {
            "x86_64" => Some(Machine::X86_64),
            "x86" => Some(Machine::X86),
            "aarch64" => Some(Machine::Aarch64),
            "ppc64le" => Some(Machine::Ppc64le),
            _ => None,
        }
    }

    /// All variants (for generators and exhaustive tests).
    pub fn all() -> [Machine; 4] {
        [Machine::X86_64, Machine::X86, Machine::Aarch64, Machine::Ppc64le]
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for m in Machine::all() {
            assert_eq!(Machine::from_str_opt(m.as_str()), Some(m));
        }
        assert_eq!(Machine::from_str_opt("vax"), None);
    }

    #[test]
    fn default_is_x86_64() {
        assert_eq!(Machine::default(), Machine::X86_64);
    }
}

//! A patchelf-equivalent: in-place dynamic-section rewriting.
//!
//! Store-model package managers (§II-D) fix up binaries post-build with
//! `patchelf`; Shrinkwrap itself "freezes the required dependencies directly
//! into the `DT_NEEDED` section". [`ElfEditor`] is that capability over the
//! simulated filesystem: read-modify-write of one object's dynamic section.

use depchaos_vfs::Vfs;

use crate::io::{peek_object, ReadError};
use crate::object::ElfObject;

/// Editor handle bound to one file in one VFS.
pub struct ElfEditor<'fs> {
    fs: &'fs Vfs,
    path: String,
}

impl<'fs> ElfEditor<'fs> {
    /// Open `path` for editing. Fails if the file is missing or not an
    /// object.
    pub fn open(fs: &'fs Vfs, path: impl Into<String>) -> Result<Self, ReadError> {
        let path = path.into();
        peek_object(fs, &path)?;
        Ok(ElfEditor { fs, path })
    }

    /// Read the current object.
    pub fn object(&self) -> Result<ElfObject, ReadError> {
        peek_object(self.fs, &self.path)
    }

    /// Apply `f` to the object and write it back. Returns the new object.
    ///
    /// The write is atomic at the VFS level (single `write_file`), matching
    /// patchelf's rewrite-then-rename discipline.
    pub fn patch<F>(&self, f: F) -> Result<ElfObject, ReadError>
    where
        F: FnOnce(&mut ElfObject),
    {
        let mut obj = self.object()?;
        f(&mut obj);
        self.fs.write_file(&self.path, obj.to_bytes()).map_err(ReadError::Fs)?;
        Ok(obj)
    }

    // Convenience wrappers mirroring patchelf's CLI.

    /// `patchelf --set-soname`
    pub fn set_soname(&self, soname: &str) -> Result<ElfObject, ReadError> {
        self.patch(|o| o.soname = Some(soname.to_string()))
    }

    /// `patchelf --add-needed` (prepends, like patchelf does)
    pub fn add_needed(&self, needed: &str) -> Result<ElfObject, ReadError> {
        self.patch(|o| o.needed.insert(0, needed.to_string()))
    }

    /// `patchelf --remove-needed`
    pub fn remove_needed(&self, needed: &str) -> Result<ElfObject, ReadError> {
        self.patch(|o| o.needed.retain(|n| n != needed))
    }

    /// `patchelf --replace-needed`
    pub fn replace_needed(&self, from: &str, to: &str) -> Result<ElfObject, ReadError> {
        self.patch(|o| {
            for n in &mut o.needed {
                if n == from {
                    *n = to.to_string();
                }
            }
        })
    }

    /// Replace the entire needed list (Shrinkwrap's main operation).
    pub fn set_needed(&self, needed: Vec<String>) -> Result<ElfObject, ReadError> {
        self.patch(|o| o.needed = needed)
    }

    /// `patchelf --set-rpath` in RUNPATH mode (the patchelf default).
    pub fn set_runpath(&self, paths: Vec<String>) -> Result<ElfObject, ReadError> {
        self.patch(|o| {
            o.runpath = paths;
            o.rpath.clear();
        })
    }

    /// `patchelf --set-rpath --force-rpath`.
    pub fn set_rpath(&self, paths: Vec<String>) -> Result<ElfObject, ReadError> {
        self.patch(|o| {
            o.rpath = paths;
            o.runpath.clear();
        })
    }

    /// `patchelf --remove-rpath` (clears both flavours).
    pub fn remove_rpath(&self) -> Result<ElfObject, ReadError> {
        self.patch(|o| {
            o.rpath.clear();
            o.runpath.clear();
        })
    }

    /// `patchelf --set-interpreter`.
    pub fn set_interp(&self, interp: &str) -> Result<ElfObject, ReadError> {
        self.patch(|o| o.interp = Some(interp.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::install;

    fn setup() -> Vfs {
        let fs = Vfs::local();
        let obj = ElfObject::exe("app").needs("liba.so").needs("libb.so").rpath("/old/lib").build();
        install(&fs, "/bin/app", &obj).unwrap();
        fs
    }

    #[test]
    fn open_missing_fails() {
        let fs = Vfs::local();
        assert!(ElfEditor::open(&fs, "/bin/ghost").is_err());
    }

    #[test]
    fn add_remove_replace_needed() {
        let fs = setup();
        let ed = ElfEditor::open(&fs, "/bin/app").unwrap();
        ed.add_needed("libnew.so").unwrap();
        assert_eq!(ed.object().unwrap().needed, vec!["libnew.so", "liba.so", "libb.so"]);
        ed.remove_needed("liba.so").unwrap();
        assert_eq!(ed.object().unwrap().needed, vec!["libnew.so", "libb.so"]);
        ed.replace_needed("libb.so", "/abs/libb.so").unwrap();
        assert_eq!(ed.object().unwrap().needed, vec!["libnew.so", "/abs/libb.so"]);
    }

    #[test]
    fn runpath_and_rpath_are_mutually_exclusive_when_set() {
        let fs = setup();
        let ed = ElfEditor::open(&fs, "/bin/app").unwrap();
        ed.set_runpath(vec!["/new/lib".into()]).unwrap();
        let o = ed.object().unwrap();
        assert!(o.rpath.is_empty());
        assert_eq!(o.runpath, vec!["/new/lib"]);
        ed.set_rpath(vec!["/forced".into()]).unwrap();
        let o = ed.object().unwrap();
        assert_eq!(o.rpath, vec!["/forced"]);
        assert!(o.runpath.is_empty());
        ed.remove_rpath().unwrap();
        let o = ed.object().unwrap();
        assert!(o.rpath.is_empty() && o.runpath.is_empty());
    }

    #[test]
    fn patch_persists_to_vfs() {
        let fs = setup();
        {
            let ed = ElfEditor::open(&fs, "/bin/app").unwrap();
            ed.set_needed(vec!["/only/one.so".into()]).unwrap();
        }
        let back = peek_object(&fs, "/bin/app").unwrap();
        assert_eq!(back.needed, vec!["/only/one.so"]);
    }

    #[test]
    fn set_interp_rewrites_program_interpreter() {
        let fs = setup();
        let ed = ElfEditor::open(&fs, "/bin/app").unwrap();
        ed.set_interp("/nix/store/x-glibc/lib/ld-linux.so.2").unwrap();
        assert_eq!(
            ed.object().unwrap().interp.as_deref(),
            Some("/nix/store/x-glibc/lib/ld-linux.so.2")
        );
    }

    #[test]
    fn edits_are_unaccounted() {
        let fs = setup();
        let ed = ElfEditor::open(&fs, "/bin/app").unwrap();
        ed.set_soname("app.so.1").unwrap();
        assert_eq!(fs.snapshot().total(), 0);
    }
}

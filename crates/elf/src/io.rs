//! Reading and installing ELF objects in a [`Vfs`].

use depchaos_vfs::{Vfs, VfsError};

use crate::format::ParseError;
use crate::object::ElfObject;

/// Errors when loading an object from the filesystem.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    Fs(VfsError),
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Fs(e) => write!(f, "{e}"),
            ReadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<VfsError> for ReadError {
    fn from(e: VfsError) -> Self {
        ReadError::Fs(e)
    }
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

/// Write `obj` at `path`, creating parent directories. Unaccounted (package
/// installation is not part of process startup).
pub fn install(fs: &Vfs, path: &str, obj: &ElfObject) -> Result<(), VfsError> {
    fs.write_file_p(path, obj.to_bytes())?;
    Ok(())
}

/// Read and parse an object, **accounted** as the loader mapping it
/// (an `openat` + `read` against the VFS cost model).
pub fn read_object(fs: &Vfs, path: &str) -> Result<ElfObject, ReadError> {
    fs.open(path)?;
    let bytes = fs.read_file(path)?;
    Ok(ElfObject::parse(&bytes)?)
}

/// Read and parse an object without accounting (tooling, assertions).
pub fn peek_object(fs: &Vfs, path: &str) -> Result<ElfObject, ReadError> {
    let bytes = fs.peek_file(path)?;
    Ok(ElfObject::parse(&bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_read_roundtrip_counts() {
        let fs = Vfs::local();
        let obj = ElfObject::dso("libz.so.1").needs("libc.so.6").build();
        install(&fs, "/usr/lib/libz.so.1", &obj).unwrap();
        assert_eq!(fs.snapshot().total(), 0, "install is unaccounted");
        let got = read_object(&fs, "/usr/lib/libz.so.1").unwrap();
        assert_eq!(got, obj);
        let s = fs.snapshot();
        assert_eq!(s.openat, 1);
        assert_eq!(s.read, 1);
    }

    #[test]
    fn peek_is_free() {
        let fs = Vfs::local();
        let obj = ElfObject::dso("liba.so").build();
        install(&fs, "/lib/liba.so", &obj).unwrap();
        assert_eq!(peek_object(&fs, "/lib/liba.so").unwrap(), obj);
        assert_eq!(fs.snapshot().total(), 0);
    }

    #[test]
    fn read_missing_is_fs_error() {
        let fs = Vfs::local();
        assert!(matches!(read_object(&fs, "/nope"), Err(ReadError::Fs(_))));
    }

    #[test]
    fn read_garbage_is_parse_error() {
        let fs = Vfs::local();
        fs.write_file_p("/lib/garbage.so", b"not an object".to_vec()).unwrap();
        assert!(matches!(read_object(&fs, "/lib/garbage.so"), Err(ReadError::Parse(_))));
    }
}

//! # depchaos-elf — the dynamic-linking view of an ELF object
//!
//! The paper's subject matter lives entirely in a handful of ELF structures:
//! the `DT_NEEDED` list, `DT_SONAME`, `DT_RPATH` / `DT_RUNPATH`, the program
//! interpreter, the machine architecture (the System V ABI says candidates of
//! the wrong architecture are *silently skipped* during search), and the
//! dynamic symbol table (duplicate strong symbols are what break the
//! "needy executables" link-line workaround in §V-B.2).
//!
//! This crate models exactly those structures — nothing else of ELF matters
//! to loader behaviour — plus:
//!
//! * a [`builder`](ElfObject::exe) API for constructing objects in tests and
//!   workload generators,
//! * a compact, deterministic serialisation ([`mod@format`]) so objects are real
//!   files inside a [`depchaos_vfs::Vfs`],
//! * a patchelf-equivalent [`editor::ElfEditor`] that rewrites dynamic
//!   sections in place (what Shrinkwrap uses),
//! * duplicate-strong-symbol link checking ([`symbols::check_link`]).
//!
//! ```
//! use depchaos_elf::{ElfObject, Machine};
//! let exe = ElfObject::exe("app")
//!     .machine(Machine::X86_64)
//!     .needs("liba.so.1")
//!     .runpath("/opt/app/lib")
//!     .build();
//! let bytes = exe.to_bytes();
//! assert_eq!(ElfObject::parse(&bytes).unwrap(), exe);
//! ```

pub mod editor;
pub mod format;
pub mod io;
pub mod machine;
pub mod object;
pub mod symbols;

pub use editor::ElfEditor;
pub use format::ParseError;
pub use machine::Machine;
pub use object::{DepPin, ElfObject, ObjectBuilder, ObjectKind, SearchDir, SearchPosition};
pub use symbols::{check_link, LinkError, Symbol, SymbolBinding};

//! Property tests: serialisation roundtrip over arbitrary objects.

use depchaos_elf::{ElfObject, Machine, Symbol};
use proptest::prelude::*;

fn name_strat() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._-]{0,12}(\\.so)?(\\.[0-9]{1,2})?".prop_map(|s| s)
}

fn path_strat() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-z0-9._-]{1,8}", 1..4).prop_map(|v| format!("/{}", v.join("/")))
}

fn machine_strat() -> impl Strategy<Value = Machine> {
    prop::sample::select(Machine::all().to_vec())
}

prop_compose! {
    fn object_strat()(
        name in name_strat(),
        is_exe in any::<bool>(),
        machine in machine_strat(),
        soname in prop::option::of(name_strat()),
        needed in prop::collection::vec(name_strat(), 0..8),
        rpath in prop::collection::vec(path_strat(), 0..4),
        runpath in prop::collection::vec(path_strat(), 0..4),
        strongs in prop::collection::vec("[a-z_][a-z0-9_]{0,10}", 0..5),
        weaks in prop::collection::vec("[a-z_][a-z0-9_]{0,10}", 0..3),
        undefined in prop::collection::vec("[a-z_][a-z0-9_]{0,10}", 0..3),
        dlopens in prop::collection::vec(name_strat(), 0..3),
        size in 0u64..1_000_000_000,
    ) -> ElfObject {
        let mut b = if is_exe { ElfObject::exe(name) } else { ElfObject::dso(name) };
        b = b.machine(machine);
        if let Some(s) = soname { b = b.soname(s); }
        b = b.needs_all(needed).rpath_all(rpath).runpath_all(runpath);
        for s in strongs { b = b.defines(Symbol::strong(s)); }
        for w in weaks { b = b.defines(Symbol::weak(w)); }
        for u in undefined { b = b.imports(u); }
        for d in dlopens { b = b.dlopens(d); }
        b.virtual_size(size).build()
    }
}

proptest! {
    /// parse(to_bytes(o)) == o for every constructible object.
    #[test]
    fn roundtrip(obj in object_strat()) {
        let parsed = ElfObject::parse(&obj.to_bytes()).unwrap();
        prop_assert_eq!(parsed, obj);
    }

    /// Serialisation is deterministic: same object, same bytes.
    #[test]
    fn deterministic(obj in object_strat()) {
        prop_assert_eq!(obj.to_bytes(), obj.to_bytes());
    }

    /// sniff accepts every real object and rejects prefix-mangled blobs.
    #[test]
    fn sniffing(obj in object_strat(), junk in any::<u8>()) {
        let bytes = obj.to_bytes();
        prop_assert!(ElfObject::sniff(&bytes));
        let mut mangled = bytes.clone();
        mangled[0] = mangled[0].wrapping_add(junk.max(1));
        prop_assert!(!ElfObject::sniff(&mangled));
    }
}

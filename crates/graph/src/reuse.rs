//! Shared-object reuse analysis (Fig 4).
//!
//! The paper surveys a machine with 3,287 binaries and finds that "only 4%
//! of shared object files are used by more than 5% of the binaries" — the
//! empirical backbone of its §III-B challenge to dynamic linking. Given a
//! binary→shared-object usage relation, [`reuse_counts`] produces the
//! per-object user counts and [`ReuseHistogram`] summarises them the way
//! Fig 4 plots them (objects ranked by frequency of use).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Per-shared-object user counts plus the population size.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReuseHistogram {
    /// `(shared object name, number of binaries using it)`, sorted by count
    /// descending then name — the Fig 4 x-axis order.
    pub ranked: Vec<(String, usize)>,
    /// Number of binaries surveyed.
    pub binary_count: usize,
}

impl ReuseHistogram {
    /// Number of distinct shared objects.
    pub fn object_count(&self) -> usize {
        self.ranked.len()
    }

    /// Number of objects used by strictly more than `frac` of binaries.
    pub fn objects_above_fraction(&self, frac: f64) -> usize {
        let threshold = frac * self.binary_count as f64;
        self.ranked.iter().filter(|(_, c)| (*c as f64) > threshold).count()
    }

    /// Fraction of objects used by more than `frac` of binaries — the
    /// paper's "only 4% used by more than 5%" headline.
    pub fn fraction_above(&self, frac: f64) -> f64 {
        if self.ranked.is_empty() {
            return 0.0;
        }
        self.objects_above_fraction(frac) as f64 / self.ranked.len() as f64
    }

    /// Median user count (most objects are used by almost nobody).
    pub fn median_users(&self) -> usize {
        if self.ranked.is_empty() {
            return 0;
        }
        self.ranked[self.ranked.len() / 2].1
    }

    /// The Fig 4 series: frequency by rank, ready to print or plot.
    pub fn series(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranked.iter().enumerate().map(|(i, (_, c))| (i, *c))
    }

    /// Render the first `n` rows plus summary, paper-style.
    pub fn render_summary(&self, n: usize) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{} binaries, {} shared objects\n",
            self.binary_count,
            self.object_count()
        ));
        for (name, c) in self.ranked.iter().take(n) {
            s.push_str(&format!("{c:>6}  {name}\n"));
        }
        s.push_str(&format!(
            "objects used by >5% of binaries: {} ({:.1}%)\n",
            self.objects_above_fraction(0.05),
            100.0 * self.fraction_above(0.05)
        ));
        s
    }
}

/// Build the histogram from `(binary, used shared objects)` pairs.
///
/// Duplicate uses of the same object by one binary count once (a binary
/// links a library or it doesn't).
pub fn reuse_counts<'a, I, S>(usages: I) -> ReuseHistogram
where
    I: IntoIterator<Item = (&'a str, S)>,
    S: IntoIterator<Item = &'a str>,
{
    let mut users: HashMap<&str, Vec<&str>> = HashMap::new();
    let mut binaries = 0usize;
    for (bin, sos) in usages {
        binaries += 1;
        let mut seen: Vec<&str> = Vec::new();
        for so in sos {
            if !seen.contains(&so) {
                seen.push(so);
                users.entry(so).or_default().push(bin);
            }
        }
    }
    let mut ranked: Vec<(String, usize)> =
        users.into_iter().map(|(so, bins)| (so.to_string(), bins.len())).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ReuseHistogram { ranked, binary_count: binaries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranking() {
        let h = reuse_counts(vec![
            ("bin1", vec!["libc", "libm"]),
            ("bin2", vec!["libc"]),
            ("bin3", vec!["libc", "librare", "librare"]),
        ]);
        assert_eq!(h.binary_count, 3);
        assert_eq!(h.object_count(), 3);
        assert_eq!(h.ranked[0], ("libc".to_string(), 3));
        // duplicate mention of librare in bin3 counted once
        assert!(h.ranked.iter().any(|(n, c)| n == "librare" && *c == 1));
    }

    #[test]
    fn fraction_above_threshold() {
        // 10 binaries; libc used by all, 9 libs used by exactly 1.
        let mut usages: Vec<(String, Vec<String>)> = Vec::new();
        for i in 0..10 {
            usages.push((format!("bin{i}"), vec!["libc".to_string(), format!("libonly{i}")]));
        }
        let h = reuse_counts(
            usages.iter().map(|(b, sos)| (b.as_str(), sos.iter().map(|s| s.as_str()))),
        );
        // threshold 50%: only libc (1 of 11 objects ≈ 9%)
        assert_eq!(h.objects_above_fraction(0.5), 1);
        assert!((h.fraction_above(0.5) - 1.0 / 11.0).abs() < 1e-9);
        assert_eq!(h.median_users(), 1);
    }

    #[test]
    fn empty_is_safe() {
        let h = reuse_counts(Vec::<(&str, Vec<&str>)>::new());
        assert_eq!(h.fraction_above(0.05), 0.0);
        assert_eq!(h.median_users(), 0);
    }

    #[test]
    fn render_mentions_headline() {
        let h = reuse_counts(vec![("b", vec!["libc"])]);
        assert!(h.render_summary(5).contains(">5% of binaries"));
    }
}

//! # depchaos-graph — dependency-graph analytics
//!
//! The ecosystem half of the paper is graph measurement:
//!
//! * **Fig 1** tallies Debian dependency declarations by *version-constraint
//!   class* (unversioned / range / exact) — [`constraints`].
//! * **Fig 2** renders the 453-node Nix Ruby build closure — [`DepGraph`]
//!   plus [`dot`].
//! * **Fig 4** is a *reuse histogram*: how many binaries link each shared
//!   object on a typical system — [`reuse`].
//!
//! [`DepGraph`] is a compact directed graph over interned string names with
//! the traversals every other crate needs: BFS transitive closure (the
//! loader's load order), topological sort (build order / store-hash domino
//! propagation), cycle detection, and degree statistics.

pub mod constraints;
pub mod dot;
pub mod graph;
pub mod reuse;
pub mod scc;

pub use constraints::{ConstraintTally, DependencyDecl, VersionConstraint};
pub use graph::{DepGraph, NodeId};
pub use reuse::{reuse_counts, ReuseHistogram};
pub use scc::{condensation, cycles, tarjan_scc};

//! A compact directed dependency graph over interned names.

use std::collections::{HashMap, VecDeque};

/// Index of a node in a [`DepGraph`]. Small and `Copy`; graphs in the
/// workloads reach a few hundred thousand nodes, comfortably within `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Directed graph where an edge `a → b` means "a depends on b".
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    names: Vec<String>,
    index: HashMap<String, NodeId>,
    /// Forward adjacency: dependencies of each node, in insertion order
    /// (order matters: it is the `DT_NEEDED` order for loader replays).
    deps: Vec<Vec<NodeId>>,
    /// Reverse adjacency: dependents of each node.
    rdeps: Vec<Vec<NodeId>>,
}

impl DepGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or new).
    pub fn add_node(&mut self, name: impl AsRef<str>) -> NodeId {
        let name = name.as_ref();
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        self.deps.push(Vec::new());
        self.rdeps.push(Vec::new());
        id
    }

    /// Add `from → to` (idempotent for exact duplicates).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.deps[from.0 as usize].contains(&to) {
            self.deps[from.0 as usize].push(to);
            self.rdeps[to.0 as usize].push(from);
        }
    }

    /// Convenience: intern both names and add the edge.
    pub fn depend(&mut self, from: impl AsRef<str>, to: impl AsRef<str>) -> (NodeId, NodeId) {
        let f = self.add_node(from);
        let t = self.add_node(to);
        self.add_edge(f, t);
        (f, t)
    }

    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0 as usize]
    }

    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.index.get(name).copied()
    }

    /// Direct dependencies in insertion order.
    pub fn deps(&self, id: NodeId) -> &[NodeId] {
        &self.deps[id.0 as usize]
    }

    /// Direct dependents.
    pub fn dependents(&self, id: NodeId) -> &[NodeId] {
        &self.rdeps[id.0 as usize]
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len() as u32).map(NodeId)
    }

    /// Transitive closure of `root` in **BFS order, excluding the root** —
    /// exactly the order in which the glibc loader visits needed entries.
    pub fn closure_bfs(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.names.len()];
        seen[root.0 as usize] = true;
        let mut out = Vec::new();
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(n) = q.pop_front() {
            for &d in self.deps(n) {
                if !seen[d.0 as usize] {
                    seen[d.0 as usize] = true;
                    out.push(d);
                    q.push_back(d);
                }
            }
        }
        out
    }

    /// Reverse transitive closure: everything that (transitively) depends on
    /// `root`, excluding the root. The store model's "domino rebuild" set.
    pub fn dependents_closure(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.names.len()];
        seen[root.0 as usize] = true;
        let mut out = Vec::new();
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(n) = q.pop_front() {
            for &d in self.dependents(n) {
                if !seen[d.0 as usize] {
                    seen[d.0 as usize] = true;
                    out.push(d);
                    q.push_back(d);
                }
            }
        }
        out
    }

    /// Kahn topological sort: dependencies before dependents. `None` if the
    /// graph has a cycle.
    pub fn topo_sort(&self) -> Option<Vec<NodeId>> {
        let n = self.names.len();
        // out-degree in the "deps" direction: a node is ready when all its
        // dependencies are emitted.
        let mut pending: Vec<usize> = self.deps.iter().map(Vec::len).collect();
        let mut q: VecDeque<NodeId> =
            (0..n).filter(|&i| pending[i] == 0).map(|i| NodeId(i as u32)).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(id) = q.pop_front() {
            out.push(id);
            for &r in self.dependents(id) {
                pending[r.0 as usize] -= 1;
                if pending[r.0 as usize] == 0 {
                    q.push_back(r);
                }
            }
        }
        if out.len() == n {
            Some(out)
        } else {
            None
        }
    }

    /// True if the dependency relation contains a cycle.
    pub fn has_cycle(&self) -> bool {
        self.topo_sort().is_none()
    }

    /// BFS depth of every node reachable from `root` (root = 0); unreachable
    /// nodes absent.
    pub fn bfs_levels(&self, root: NodeId) -> HashMap<NodeId, usize> {
        let mut lv = HashMap::new();
        lv.insert(root, 0usize);
        let mut q = VecDeque::new();
        q.push_back(root);
        while let Some(n) = q.pop_front() {
            let next = lv[&n] + 1;
            for &d in self.deps(n) {
                lv.entry(d).or_insert_with(|| {
                    q.push_back(d);
                    next
                });
            }
        }
        lv
    }

    /// Out-degree histogram: `result[k]` = number of nodes with exactly `k`
    /// direct dependencies (vector sized to max degree + 1).
    pub fn out_degree_histogram(&self) -> Vec<usize> {
        let mut h = Vec::new();
        for d in &self.deps {
            let k = d.len();
            if h.len() <= k {
                h.resize(k + 1, 0);
            }
            h[k] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DepGraph, NodeId, NodeId, NodeId, NodeId) {
        // app -> liba, libb; liba -> libc; libb -> libc
        let mut g = DepGraph::new();
        let app = g.add_node("app");
        let a = g.add_node("liba");
        let b = g.add_node("libb");
        let c = g.add_node("libc");
        g.add_edge(app, a);
        g.add_edge(app, b);
        g.add_edge(a, c);
        g.add_edge(b, c);
        (g, app, a, b, c)
    }

    #[test]
    fn interning_is_idempotent() {
        let mut g = DepGraph::new();
        let x1 = g.add_node("x");
        let x2 = g.add_node("x");
        assert_eq!(x1, x2);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.lookup("x"), Some(x1));
        assert_eq!(g.lookup("y"), None);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut g = DepGraph::new();
        g.depend("a", "b");
        g.depend("a", "b");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn bfs_closure_order_and_dedup() {
        let (g, app, a, b, c) = diamond();
        let cl = g.closure_bfs(app);
        assert_eq!(cl, vec![a, b, c], "BFS order, c visited once");
    }

    #[test]
    fn dependents_closure_is_reverse() {
        let (g, app, a, b, c) = diamond();
        let mut dc = g.dependents_closure(c);
        dc.sort();
        let mut expect = vec![app, a, b];
        expect.sort();
        assert_eq!(dc, expect);
    }

    #[test]
    fn topo_sort_deps_first() {
        let (g, app, _, _, c) = diamond();
        let order = g.topo_sort().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(c) < pos(app));
        for n in g.nodes() {
            for &d in g.deps(n) {
                assert!(pos(d) < pos(n), "dep {d:?} must precede {n:?}");
            }
        }
    }

    #[test]
    fn cycle_detected() {
        let mut g = DepGraph::new();
        g.depend("a", "b");
        g.depend("b", "a");
        assert!(g.has_cycle());
        assert!(g.topo_sort().is_none());
    }

    #[test]
    fn bfs_levels_depths() {
        let (g, app, a, b, c) = diamond();
        let lv = g.bfs_levels(app);
        assert_eq!(lv[&app], 0);
        assert_eq!(lv[&a], 1);
        assert_eq!(lv[&b], 1);
        assert_eq!(lv[&c], 2);
    }

    #[test]
    fn degree_histogram() {
        let (g, ..) = diamond();
        let h = g.out_degree_histogram();
        // libc has 0 deps; liba/libb 1 each; app 2.
        assert_eq!(h, vec![1, 2, 1]);
    }
}

//! Strongly connected components (iterative Tarjan).
//!
//! Real package archives are not DAGs: Debian's `Depends` graph contains
//! mutual-dependency knots that maintainers handle specially. An ecosystem
//! analyzer therefore needs SCCs both to report those knots (the condensed
//! graph is what install order is computed over) and to keep the rest of
//! the tooling honest about where topological order exists.

use crate::graph::{DepGraph, NodeId};

/// Compute SCCs. Returns components in reverse topological order of the
/// condensation (dependencies-last), each as a sorted list of nodes.
pub fn tarjan_scc(g: &DepGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS stack: (node, next child position).
    for start in 0..n as u32 {
        if index[start as usize] != usize::MAX {
            continue;
        }
        let mut call: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            let vi = v as usize;
            if *ci == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let deps = g.deps(NodeId(v));
            if *ci < deps.len() {
                let w = deps[*ci].0;
                *ci += 1;
                let wi = w as usize;
                if index[wi] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                if lowlink[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w as usize] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    out.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
            }
        }
    }
    out
}

/// Components with more than one member — the dependency knots.
pub fn cycles(g: &DepGraph) -> Vec<Vec<NodeId>> {
    tarjan_scc(g).into_iter().filter(|c| c.len() > 1).collect()
}

/// The condensation: one node per SCC (named after its lexicographically
/// first member, with a `+N` suffix for knots), edges between distinct
/// components. Always a DAG — the graph install order is computed over.
pub fn condensation(g: &DepGraph) -> DepGraph {
    let sccs = tarjan_scc(g);
    let mut comp_of = vec![usize::MAX; g.node_count()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &n in comp {
            comp_of[n.0 as usize] = ci;
        }
    }
    let mut out = DepGraph::new();
    let names: Vec<String> = sccs
        .iter()
        .map(|comp| {
            let first = comp.iter().map(|&n| g.name(n)).min().unwrap();
            if comp.len() == 1 {
                first.to_string()
            } else {
                format!("{first}+{}", comp.len() - 1)
            }
        })
        .collect();
    let ids: Vec<NodeId> = names.iter().map(|n| out.add_node(n)).collect();
    for n in g.nodes() {
        for &d in g.deps(n) {
            let (cf, ct) = (comp_of[n.0 as usize], comp_of[d.0 as usize]);
            if cf != ct {
                out.add_edge(ids[cf], ids[ct]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DepGraph::new();
        g.depend("a", "b");
        g.depend("b", "c");
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(cycles(&g).is_empty());
    }

    #[test]
    fn mutual_depends_grouped() {
        // The classic Debian knot: libc6 <-> libgcc-ish mutualism, plus a
        // leaf hanging off it.
        let mut g = DepGraph::new();
        g.depend("libfoo", "libbar");
        g.depend("libbar", "libfoo");
        g.depend("app", "libfoo");
        let knots = cycles(&g);
        assert_eq!(knots.len(), 1);
        assert_eq!(knots[0].len(), 2);
        let names: Vec<&str> = knots[0].iter().map(|&n| g.name(n)).collect();
        assert!(names.contains(&"libfoo") && names.contains(&"libbar"));
    }

    #[test]
    fn components_in_dependency_first_order() {
        // Tarjan emits components with dependencies before dependents.
        let mut g = DepGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b); // a depends on b
        let sccs = tarjan_scc(&g);
        let pos_a = sccs.iter().position(|c| c.contains(&a)).unwrap();
        let pos_b = sccs.iter().position(|c| c.contains(&b)).unwrap();
        assert!(pos_b < pos_a, "b (dependency) emitted first");
    }

    #[test]
    fn big_cycle_single_component() {
        let mut g = DepGraph::new();
        let ids: Vec<_> = (0..50).map(|i| g.add_node(format!("n{i}"))).collect();
        for i in 0..50 {
            g.add_edge(ids[i], ids[(i + 1) % 50]);
        }
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 50);
    }

    #[test]
    fn condensation_is_a_dag_with_knots_collapsed() {
        let mut g = DepGraph::new();
        g.depend("a", "b");
        g.depend("b", "a"); // knot {a,b}
        g.depend("app", "a");
        g.depend("b", "libc");
        let c = condensation(&g);
        assert_eq!(c.node_count(), 3, "app, a+1, libc");
        assert!(!c.has_cycle());
        let knot = c.lookup("a+1").expect("collapsed knot named after first member");
        assert_eq!(c.dependents(knot).len(), 1);
        assert_eq!(c.deps(knot).len(), 1);
    }

    #[test]
    fn condensation_of_dag_is_isomorphic() {
        let mut g = DepGraph::new();
        g.depend("x", "y");
        g.depend("y", "z");
        let c = condensation(&g);
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert!(c.lookup("x").is_some());
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // Iterative Tarjan must survive recursion-killer depths.
        let mut g = DepGraph::new();
        let mut prev = g.add_node("n0");
        for i in 1..100_000 {
            let cur = g.add_node(format!("n{i}"));
            g.add_edge(prev, cur);
            prev = cur;
        }
        assert_eq!(tarjan_scc(&g).len(), 100_000);
    }
}

//! Graphviz DOT export (Fig 2's "snarl" rendering).

use crate::graph::DepGraph;

/// Render the graph in DOT. Node labels are the interned names; edges point
/// from dependent to dependency, like the paper's Fig 2.
pub fn to_dot(g: &DepGraph, graph_name: &str) -> String {
    let mut s = String::with_capacity(64 * g.node_count());
    s.push_str(&format!("digraph \"{}\" {{\n", escape(graph_name)));
    s.push_str("  rankdir=TB;\n  node [shape=box, fontsize=8];\n");
    for n in g.nodes() {
        s.push_str(&format!("  n{} [label=\"{}\"];\n", n.0, escape(g.name(n))));
    }
    for n in g.nodes() {
        for &d in g.deps(n) {
            s.push_str(&format!("  n{} -> n{};\n", n.0, d.0));
        }
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = DepGraph::new();
        g.depend("ruby-2.7.5.drv", "gcc-10.3.0.drv");
        let dot = to_dot(&g, "ruby");
        assert!(dot.starts_with("digraph \"ruby\""));
        assert!(dot.contains("label=\"ruby-2.7.5.drv\""));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_escaped() {
        let mut g = DepGraph::new();
        g.add_node("weird\"name");
        let dot = to_dot(&g, "g");
        assert!(dot.contains("weird\\\"name"));
    }
}

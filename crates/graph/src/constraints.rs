//! Version-constraint taxonomy of dependency declarations (Fig 1).
//!
//! The paper's Debian analysis classifies every `Depends:` relation as
//! **unversioned** (`libfoo`), a **version range** (`libfoo (>= 1.2)`), or
//! **exact** (`libfoo (= 1.2-3)`), and finds ~3/4 of ~209k relations are
//! completely unversioned — the "implicitly encoded and unenforceable
//! knowledge" the maintainers carry.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How tightly a dependency pins its target version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VersionConstraint {
    /// No version at all: `Depends: libfoo`.
    Unversioned,
    /// An inequality or interval: `(>= 1.2)`, `(<< 2.0)`.
    Range,
    /// Exact pin: `(= 1.2-3)`.
    Exact,
}

impl VersionConstraint {
    pub fn as_str(&self) -> &'static str {
        match self {
            VersionConstraint::Unversioned => "Unversioned",
            VersionConstraint::Range => "Version Range",
            VersionConstraint::Exact => "Exact",
        }
    }

    /// Classify a Debian-style relation string.
    ///
    /// `libfoo` → Unversioned; `libfoo (>= 1.2)` → Range;
    /// `libfoo (= 1.2)` → Exact.
    pub fn classify(relation: &str) -> VersionConstraint {
        match relation.find('(') {
            None => VersionConstraint::Unversioned,
            Some(i) => {
                let inner = relation[i + 1..].trim_start();
                // `=` is exact; `>=`, `<=`, `>>`, `<<` are ranges.
                if inner.starts_with("= ") || (inner.starts_with('=') && !inner.starts_with("==")) {
                    VersionConstraint::Exact
                } else {
                    VersionConstraint::Range
                }
            }
        }
    }
}

impl fmt::Display for VersionConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One dependency declaration in a package archive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyDecl {
    pub from: String,
    pub to: String,
    pub constraint: VersionConstraint,
}

/// Counts per constraint class — the three bars of Fig 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintTally {
    pub unversioned: u64,
    pub range: u64,
    pub exact: u64,
}

impl ConstraintTally {
    /// Tally a stream of declarations.
    pub fn tally<'a, I: IntoIterator<Item = &'a DependencyDecl>>(decls: I) -> Self {
        let mut t = ConstraintTally::default();
        for d in decls {
            t.add(d.constraint);
        }
        t
    }

    pub fn add(&mut self, c: VersionConstraint) {
        match c {
            VersionConstraint::Unversioned => self.unversioned += 1,
            VersionConstraint::Range => self.range += 1,
            VersionConstraint::Exact => self.exact += 1,
        }
    }

    pub fn total(&self) -> u64 {
        self.unversioned + self.range + self.exact
    }

    /// Fraction of declarations with no version information at all.
    pub fn unversioned_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unversioned as f64 / self.total() as f64
        }
    }

    /// Render the Fig 1 bar data as an aligned text table.
    pub fn render_table(&self) -> String {
        format!(
            "{:<14} {:>9}\n{:<14} {:>9}\n{:<14} {:>9}\n{:<14} {:>9}\n",
            "Unversioned",
            self.unversioned,
            "Version Range",
            self.range,
            "Exact",
            self.exact,
            "Total",
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_debian_relations() {
        assert_eq!(VersionConstraint::classify("libc6"), VersionConstraint::Unversioned);
        assert_eq!(VersionConstraint::classify("libc6 (>= 2.17)"), VersionConstraint::Range);
        assert_eq!(VersionConstraint::classify("libfoo (<< 2.0)"), VersionConstraint::Range);
        assert_eq!(VersionConstraint::classify("libbar (= 1.2-3)"), VersionConstraint::Exact);
        assert_eq!(VersionConstraint::classify("libbar (=1.2)"), VersionConstraint::Exact);
    }

    #[test]
    fn tally_sums() {
        let decls = vec![
            DependencyDecl {
                from: "a".into(),
                to: "x".into(),
                constraint: VersionConstraint::Unversioned,
            },
            DependencyDecl {
                from: "a".into(),
                to: "y".into(),
                constraint: VersionConstraint::Unversioned,
            },
            DependencyDecl {
                from: "b".into(),
                to: "x".into(),
                constraint: VersionConstraint::Range,
            },
            DependencyDecl {
                from: "c".into(),
                to: "x".into(),
                constraint: VersionConstraint::Exact,
            },
        ];
        let t = ConstraintTally::tally(&decls);
        assert_eq!(t.unversioned, 2);
        assert_eq!(t.range, 1);
        assert_eq!(t.exact, 1);
        assert_eq!(t.total(), 4);
        assert!((t.unversioned_fraction() - 0.5).abs() < 1e-9);
        assert!(t.render_table().contains("Unversioned"));
    }
}

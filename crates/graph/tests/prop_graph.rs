//! Property tests over random DAGs.

use depchaos_graph::{DepGraph, NodeId};
use proptest::prelude::*;

/// Random DAG: edges only from lower to higher index, so acyclic by
/// construction.
fn dag_strat() -> impl Strategy<Value = DepGraph> {
    (2usize..40).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..n * 2).prop_map(move |pairs| {
            let mut g = DepGraph::new();
            for i in 0..n {
                g.add_node(format!("n{i}"));
            }
            for (a, b) in pairs {
                if a < b {
                    g.add_edge(NodeId(a as u32), NodeId(b as u32));
                }
            }
            g
        })
    })
}

proptest! {
    /// Topo sort exists for DAGs and respects every edge.
    #[test]
    fn topo_valid_on_dags(g in dag_strat()) {
        let order = g.topo_sort().expect("acyclic by construction");
        prop_assert_eq!(order.len(), g.node_count());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in g.nodes() {
            for &d in g.deps(n) {
                prop_assert!(pos[&d] < pos[&n]);
            }
        }
    }

    /// BFS closure contains exactly the reachable set, no duplicates.
    #[test]
    fn closure_is_reachable_set(g in dag_strat()) {
        let root = NodeId(0);
        let cl = g.closure_bfs(root);
        let set: std::collections::HashSet<_> = cl.iter().copied().collect();
        prop_assert_eq!(set.len(), cl.len(), "no duplicates");
        prop_assert!(!set.contains(&root), "root excluded");
        // every direct dep of every closure member (and of root) is in the closure
        for &n in cl.iter().chain(std::iter::once(&root)) {
            for &d in g.deps(n) {
                prop_assert!(set.contains(&d));
            }
        }
    }

    /// x in closure(root) iff root in dependents_closure(x).
    #[test]
    fn closure_duality(g in dag_strat()) {
        let root = NodeId(0);
        let fwd: std::collections::HashSet<_> = g.closure_bfs(root).into_iter().collect();
        for x in g.nodes() {
            if x == root { continue; }
            let back: std::collections::HashSet<_> =
                g.dependents_closure(x).into_iter().collect();
            prop_assert_eq!(fwd.contains(&x), back.contains(&root));
        }
    }

    /// Degree histogram sums to node count; weighted sum to edge count.
    #[test]
    fn histogram_conservation(g in dag_strat()) {
        let h = g.out_degree_histogram();
        prop_assert_eq!(h.iter().sum::<usize>(), g.node_count());
        prop_assert_eq!(h.iter().enumerate().map(|(k, c)| k * c).sum::<usize>(), g.edge_count());
    }
}

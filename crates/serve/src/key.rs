//! Content addressing: the stable 128-bit [`ScenarioKey`].
//!
//! A key names the **full semantic identity** of one store cell — one
//! `(scenario, rank point)` result of the sweep engine. Two invocations
//! that would simulate the same thing hash to the same key; any input that
//! could change the simulated numbers is hashed, so editing one axis value
//! (a distribution parameter, a calibration constant, the experiment seed)
//! re-keys exactly the affected cells and leaves every other cell warm.
//! That property *is* the store's invalidation rule — there is no separate
//! dependency graph to maintain, the key is the dependency closure.
//!
//! Hashed inputs, in order:
//!
//! 1. [`ENGINE_EPOCH`] — bumped by hand whenever engine *semantics* change
//!    (DES scheduling, seed derivation, classification) so every pre-change
//!    record is evicted wholesale instead of silently served stale;
//! 2. the workload fingerprint (its [`depchaos_workloads::Workload::name`]
//!    — the trait contract makes the name the world identity: two configs
//!    that install different worlds must carry different names);
//! 3. backend name, storage model, wrap state, cache policy;
//! 4. the [`ServiceDistribution`] (variant tag + integer milli parameter,
//!    not the display string, so renaming never aliases two distributions),
//!    the [`FaultModel`] (variant tag + every integer parameter, encoded
//!    the same way), and the
//!    [`ServerTopology`](depchaos_launch::ServerTopology) (server count + assignment
//!    policy tag — a single-server cell hashes `(1, hash)` explicitly, so
//!    the axis can never alias another field);
//! 5. the rank point, then the replicate-control plan behind a tag byte:
//!    under **adaptive** control ([`AdaptiveControl`]) a draw-taking cell
//!    hashes the stopping-rule *parameters* (target, `min_k`, `max_k`,
//!    batch) — never the K a run happened to stop at, which is a pure
//!    function of those parameters and so would be redundant — while a
//!    **fixed**-K cell (or any cell whose distribution is deterministic
//!    *and* whose fault model takes no draws, which clamps to one
//!    replicate exactly as [`depchaos_launch::sweep_ranks_replicated`]
//!    does) hashes the effective replicate count, so asking for 5 or 50
//!    replicates of an exact cell is one key and an adaptive request on
//!    an exact cell is the *same* key as the fixed request it degenerates
//!    to;
//! 6. the seed domain (the experiment's base seed — per-cell seeds derive
//!    from it and the label, which items 2–4 already pin) and every
//!    calibration field of the base [`LaunchConfig`].
//!
//! The hash itself is two independently keyed SipHash-2-4 lanes over a
//! length-prefixed field encoding — stable by construction (the algorithm
//! and keys are spelled out here, not borrowed from `std`'s unstable
//! `DefaultHasher`), collision-resistant far beyond any matrix this engine
//! will ever expand, and pinned by golden-vector tests so accidental
//! drift in the input encoding cannot silently poison a store.

use depchaos_launch::{
    AdaptiveControl, AssignPolicy, FaultModel, LaunchConfig, ScenarioSpec, ServiceDistribution,
};

/// Engine-semantics epoch. Bump when the DES, the seed derivation, the
/// classification, or the profile capture changes meaning — every record
/// written under an older epoch is evicted at store load.
///
/// Epoch 2: the fault-model axis joined the key schema (and
/// [`depchaos_launch::LaunchResult`] grew fault accounting the codec now
/// stores), so epoch-1 records no longer decode.
///
/// Epoch 3: the replicate field became a tagged union — fixed effective-K
/// versus the adaptive stopping-rule parameters ([`AdaptiveControl`]) —
/// which re-encodes *every* cell (a tag byte precedes the old bare count),
/// so epoch-2 keys never alias the new schema.
///
/// Epoch 4: the server-topology axis ([`depchaos_launch::ServerTopology`])
/// joined the key schema — server count and assignment-policy tag, hashed
/// after the fault model — and the codec grew the `servers` field of the
/// queueing envelope, so epoch-3 records no longer decode.
pub const ENGINE_EPOCH: u32 = 4;

/// One SipHash-2-4 run over `data` with the given 128-bit key.
///
/// Reference implementation of the SipHash-2-4 MAC (Aumasson–Bernstein),
/// specialised to a byte slice; verified against the published test
/// vectors in this module's tests.
fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = k0 ^ 0x736f_6d65_7073_6575;
    let mut v1 = k1 ^ 0x646f_7261_6e64_6f6d;
    let mut v2 = k0 ^ 0x6c79_6765_6e65_7261;
    let mut v3 = k1 ^ 0x7465_6462_7974_6573;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes little-endian, length in the top byte.
    let tail = chunks.remainder();
    let mut b = (data.len() as u64) << 56;
    for (i, &byte) in tail.iter().enumerate() {
        b |= (byte as u64) << (8 * i);
    }
    v3 ^= b;
    sipround!();
    sipround!();
    v0 ^= b;
    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// Unambiguous field encoder: every field is length- or width-delimited,
/// so `("ab", "c")` and `("a", "bc")` can never encode to the same bytes.
#[derive(Default)]
struct FieldBuf(Vec<u8>);

impl FieldBuf {
    fn str(&mut self, s: &str) {
        self.0.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.0.extend_from_slice(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
}

/// The 128-bit content address of one `(scenario, rank point)` store cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScenarioKey(pub u128);

impl ScenarioKey {
    /// 32-hex-digit form — the spelling records carry on disk.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the [`ScenarioKey::hex`] spelling.
    pub fn from_hex(s: &str) -> Option<ScenarioKey> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ScenarioKey)
    }
}

impl std::fmt::Display for ScenarioKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Everything that identifies one store cell. Borrowed views only — the
/// key derivation allocates nothing beyond its scratch buffer.
#[derive(Debug, Clone, Copy)]
pub struct CellIdentity<'a> {
    pub spec: &'a ScenarioSpec,
    /// The rank point this cell simulates.
    pub ranks: usize,
    /// The **requested** replicate count; the key hashes the effective
    /// count (1 for deterministic cells), mirroring the sweep's clamp.
    pub replicates: usize,
    /// Adaptive replicate control, if the matrix ran under it. For a
    /// draw-taking cell the key hashes these stopping-rule parameters in
    /// place of the fixed count; for an exact cell (which clamps to one
    /// replicate either way) the field is ignored so the adaptive and
    /// fixed requests share one key, mirroring execution.
    pub adaptive: Option<AdaptiveControl>,
    /// The base configuration: experiment seed + cluster calibration.
    /// `ranks`, `broadcast_cache`, `service_dist`, and the per-cell seed
    /// are axis-derived and already covered above, so only the true
    /// calibration fields participate.
    pub base: &'a LaunchConfig,
}

impl CellIdentity<'_> {
    /// The replicate count the sweep will actually run — deterministic
    /// cells collapse to one replicate no matter what was requested, so
    /// hashing the request verbatim would split one result across keys.
    pub fn effective_replicates(&self) -> usize {
        if self.cell_takes_draws() {
            self.replicates.max(1)
        } else {
            1
        }
    }

    /// Whether this cell's replicate axis is live: a stochastic service
    /// distribution or a draw-taking fault model. Exact cells clamp to one
    /// replicate and ignore replicate control entirely.
    fn cell_takes_draws(&self) -> bool {
        !self.spec.dist.is_deterministic() || self.spec.fault.takes_draws()
    }

    /// Derive the cell's content address.
    pub fn key(&self) -> ScenarioKey {
        let mut buf = FieldBuf::default();
        buf.u32(ENGINE_EPOCH);
        buf.str(&self.spec.workload);
        buf.str(&self.spec.backend);
        buf.str(self.spec.storage.name());
        buf.str(self.spec.wrap.name());
        buf.str(self.spec.cache.name());
        match self.spec.dist {
            ServiceDistribution::Deterministic => buf.u8(0),
            ServiceDistribution::UniformJitter { spread_milli } => {
                buf.u8(1);
                buf.u32(spread_milli);
            }
            ServiceDistribution::LogNormal { sigma_milli } => {
                buf.u8(2);
                buf.u32(sigma_milli);
            }
        }
        match self.spec.fault {
            FaultModel::None => buf.u8(0),
            FaultModel::ServerStall { at_ns, duration_ns } => {
                buf.u8(1);
                buf.u64(at_ns);
                buf.u64(duration_ns);
            }
            FaultModel::RpcLoss { loss_milli, timeout_ns, backoff_base_ns, max_retries } => {
                buf.u8(2);
                buf.u32(loss_milli);
                buf.u64(timeout_ns);
                buf.u64(backoff_base_ns);
                buf.u32(max_retries);
            }
            FaultModel::Stragglers { frac_milli, slow_milli } => {
                buf.u8(3);
                buf.u32(frac_milli);
                buf.u32(slow_milli);
            }
        }
        buf.u64(self.spec.topology.servers as u64);
        buf.u8(match self.spec.topology.assign {
            AssignPolicy::HashByNode => 0,
            AssignPolicy::LeastLoaded => 1,
        });
        buf.u64(self.ranks as u64);
        // Replicate control, tagged. The adaptive arm hashes the rule's
        // parameters, not the stopped-at K — K is a pure function of the
        // parameters and the cell's draws, so hashing it would only split
        // one semantic cell across keys. Exact cells take the fixed arm
        // regardless of `adaptive`, matching the execution clamp.
        match self.adaptive {
            Some(ctl) if self.cell_takes_draws() => {
                buf.u8(1);
                buf.u32(ctl.target_rel_milli);
                buf.u64(ctl.min_k as u64);
                buf.u64(ctl.max_k as u64);
                buf.u64(ctl.batch as u64);
            }
            _ => {
                buf.u8(0);
                buf.u64(self.effective_replicates() as u64);
            }
        }
        buf.u64(self.base.seed);
        buf.u64(self.base.ranks_per_node as u64);
        buf.u64(self.base.rtt_ns);
        buf.u64(self.base.meta_service_ns);
        buf.u64(self.base.warm_ns);
        buf.u64(self.base.base_overhead_ns);
        buf.u64(self.base.per_rank_overhead_ns);

        // Two independently keyed lanes; the keys are arbitrary nothing-up-
        // my-sleeve constants and part of the on-disk format.
        let lo = siphash24(0x6465_7063_6861_6f73, 0x7363_656e_6172_696f, &buf.0);
        let hi = siphash24(0x7365_7276_655f_6b65, 0x795f_6c61_6e65_5f68, &buf.0);
        ScenarioKey(((hi as u128) << 64) | lo as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_launch::{CachePolicy, WrapState};
    use depchaos_vfs::StorageModel;

    /// Cross-check the hand-rolled SipHash-2-4 against `std`'s (deprecated
    /// but still shipped) `SipHasher`, which implements the same MAC: every
    /// length from empty through several full blocks, several keys. This
    /// anchors the *algorithm*; the golden keys below anchor the *input
    /// encoding* on top of it.
    #[test]
    #[allow(deprecated)]
    fn siphash24_matches_std_reference() {
        use std::hash::Hasher;
        let msg: Vec<u8> = (0u8..64).map(|i| i.wrapping_mul(37) ^ 0x5a).collect();
        for &(k0, k1) in &[(0u64, 0u64), (1, 2), (u64::MAX, 7), (0xdead_beef, 0xcafe_f00d)] {
            for len in 0..=msg.len() {
                let mut h = std::hash::SipHasher::new_with_keys(k0, k1);
                h.write(&msg[..len]);
                assert_eq!(siphash24(k0, k1, &msg[..len]), h.finish(), "key {k0:#x}, len {len}");
            }
        }
    }

    fn spec(dist: ServiceDistribution) -> ScenarioSpec {
        ScenarioSpec {
            workload: "pynamic-200".to_string(),
            backend: "glibc".to_string(),
            storage: StorageModel::Nfs,
            wrap: WrapState::Plain,
            cache: CachePolicy::Cold,
            dist,
            fault: FaultModel::None,
            topology: depchaos_launch::ServerTopology::single(),
        }
    }

    fn key_of(spec: &ScenarioSpec, ranks: usize, replicates: usize, base: &LaunchConfig) -> u128 {
        CellIdentity { spec, ranks, replicates, adaptive: None, base }.key().0
    }

    fn adaptive_key_of(
        spec: &ScenarioSpec,
        ranks: usize,
        replicates: usize,
        ctl: AdaptiveControl,
        base: &LaunchConfig,
    ) -> u128 {
        CellIdentity { spec, ranks, replicates, adaptive: Some(ctl), base }.key().0
    }

    /// Golden vectors: these exact keys are the on-disk format. If this
    /// test fails, either an input silently joined/left the hash (drift
    /// that would poison every existing store — fix the code), or the
    /// schema deliberately changed (bump [`ENGINE_EPOCH`] and repin).
    #[test]
    fn golden_scenario_keys() {
        let base = LaunchConfig::default();
        let det = spec(ServiceDistribution::Deterministic);
        let log = spec(ServiceDistribution::log_normal(0.5));
        let jit = spec(ServiceDistribution::uniform_jitter(0.25));
        let wrapped = ScenarioSpec { wrap: WrapState::Wrapped, ..det.clone() };
        let ctl = AdaptiveControl { target_rel_milli: 50, min_k: 4, max_k: 11, batch: 4 };
        assert_eq!(key_of(&det, 512, 11, &base), 0x0bcc_aaec_0235_8c12_b2d7_1726_7ef3_5f12);
        assert_eq!(key_of(&det, 2048, 11, &base), 0xec0d_14e6_5086_0167_0abb_b8fc_e2e1_0a07);
        assert_eq!(key_of(&log, 512, 11, &base), 0x5231_a73f_b512_50bf_eb1d_4b57_ce59_2d73);
        assert_eq!(key_of(&jit, 512, 11, &base), 0x29b7_3e4d_a63e_e074_133b_48cf_3249_2be3);
        assert_eq!(key_of(&wrapped, 512, 11, &base), 0x25bb_3a4c_5e34_259e_002d_4d40_6ee9_b2e5);
        assert_eq!(
            adaptive_key_of(&log, 512, 11, ctl, &base),
            0xa18f_5b49_d83e_4c16_97cd_9d0a_7628_a5b0
        );
    }

    #[test]
    fn every_axis_moves_the_key() {
        let base = LaunchConfig::default();
        let s = spec(ServiceDistribution::log_normal(0.5));
        let k = key_of(&s, 512, 11, &base);
        let variants: Vec<ScenarioSpec> = vec![
            ScenarioSpec { workload: "pynamic-201".into(), ..s.clone() },
            ScenarioSpec { backend: "musl".into(), ..s.clone() },
            ScenarioSpec { storage: StorageModel::Local, ..s.clone() },
            ScenarioSpec { wrap: WrapState::Wrapped, ..s.clone() },
            ScenarioSpec { cache: CachePolicy::Broadcast, ..s.clone() },
            ScenarioSpec { dist: ServiceDistribution::log_normal(0.501), ..s.clone() },
            ScenarioSpec {
                fault: FaultModel::ServerStall { at_ns: 0, duration_ns: 1 },
                ..s.clone()
            },
            ScenarioSpec {
                fault: FaultModel::Stragglers { frac_milli: 1, slow_milli: 2000 },
                ..s.clone()
            },
            ScenarioSpec { topology: depchaos_launch::ServerTopology::hash(2), ..s.clone() },
            ScenarioSpec {
                topology: depchaos_launch::ServerTopology::least_loaded(2),
                ..s.clone()
            },
        ];
        for v in &variants {
            assert_ne!(key_of(v, 512, 11, &base), k, "{v:?}");
        }
        // The assignment policy moves the key at equal fleet size.
        let h2 = ScenarioSpec { topology: depchaos_launch::ServerTopology::hash(2), ..s.clone() };
        let l2 = ScenarioSpec {
            topology: depchaos_launch::ServerTopology::least_loaded(2),
            ..s.clone()
        };
        assert_ne!(key_of(&h2, 512, 11, &base), key_of(&l2, 512, 11, &base));
        assert_ne!(key_of(&s, 1024, 11, &base), k, "rank point");
        assert_ne!(key_of(&s, 512, 12, &base), k, "replicates (stochastic)");
        for field in 0..7 {
            let mut b = base.clone();
            match field {
                0 => b.seed += 1,
                1 => b.ranks_per_node += 1,
                2 => b.rtt_ns += 1,
                3 => b.meta_service_ns += 1,
                4 => b.warm_ns += 1,
                5 => b.base_overhead_ns += 1,
                _ => b.per_rank_overhead_ns += 1,
            }
            assert_ne!(key_of(&s, 512, 11, &b), k, "calibration field {field}");
        }
    }

    #[test]
    fn deterministic_cells_ignore_requested_replicates() {
        let base = LaunchConfig::default();
        let det = spec(ServiceDistribution::Deterministic);
        assert_eq!(key_of(&det, 512, 1, &base), key_of(&det, 512, 50, &base));
        let log = spec(ServiceDistribution::log_normal(0.5));
        assert_ne!(key_of(&log, 512, 1, &base), key_of(&log, 512, 50, &base));
        // And the zero-replicate request clamps to 1, like the sweep.
        assert_eq!(key_of(&log, 512, 0, &base), key_of(&log, 512, 1, &base));
        // A draw-taking fault re-opens the replicate axis even under a
        // deterministic distribution (the sweep replicates those cells)…
        let lossy = ScenarioSpec {
            fault: FaultModel::RpcLoss {
                loss_milli: 100,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
            ..det.clone()
        };
        assert_ne!(key_of(&lossy, 512, 1, &base), key_of(&lossy, 512, 50, &base));
        // …while a draw-free fault (stall) keeps the cell exact.
        let stalled =
            ScenarioSpec { fault: FaultModel::ServerStall { at_ns: 0, duration_ns: 1 }, ..det };
        assert_eq!(key_of(&stalled, 512, 1, &base), key_of(&stalled, 512, 50, &base));
    }

    #[test]
    fn adaptive_control_rekeys_stochastic_cells_only() {
        let base = LaunchConfig::default();
        let ctl = AdaptiveControl { target_rel_milli: 50, min_k: 4, max_k: 11, batch: 4 };
        // A draw-taking cell: the stopping rule is part of its identity,
        // and so is every parameter of the rule.
        let log = spec(ServiceDistribution::log_normal(0.5));
        let fixed = key_of(&log, 512, 11, &base);
        let adaptive = adaptive_key_of(&log, 512, 11, ctl, &base);
        assert_ne!(adaptive, fixed, "adaptive and fixed plans simulate different sample sizes");
        for (name, v) in [
            ("target", AdaptiveControl { target_rel_milli: 51, ..ctl }),
            ("min_k", AdaptiveControl { min_k: 5, ..ctl }),
            ("max_k", AdaptiveControl { max_k: 12, ..ctl }),
            ("batch", AdaptiveControl { batch: 5, ..ctl }),
        ] {
            assert_ne!(adaptive_key_of(&log, 512, 11, v, &base), adaptive, "{name}");
        }
        // Under adaptive control the requested fixed count is dead — max_k
        // governs — so it must not move the key.
        assert_eq!(adaptive_key_of(&log, 512, 50, ctl, &base), adaptive);
        // An exact cell clamps to one replicate whether or not adaptive
        // control was requested: one semantic result, one key.
        let det = spec(ServiceDistribution::Deterministic);
        assert_eq!(adaptive_key_of(&det, 512, 11, ctl, &base), key_of(&det, 512, 11, &base));
        // A draw-taking fault re-opens the axis, adaptive params included.
        let lossy = ScenarioSpec {
            fault: FaultModel::RpcLoss {
                loss_milli: 100,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
            ..det
        };
        assert_ne!(adaptive_key_of(&lossy, 512, 11, ctl, &base), key_of(&lossy, 512, 11, &base));
    }

    #[test]
    fn hex_round_trips() {
        let base = LaunchConfig::default();
        let k = CellIdentity {
            spec: &spec(ServiceDistribution::Deterministic),
            ranks: 512,
            replicates: 11,
            adaptive: None,
            base: &base,
        }
        .key();
        assert_eq!(k.hex().len(), 32);
        assert_eq!(ScenarioKey::from_hex(&k.hex()), Some(k));
        assert_eq!(ScenarioKey::from_hex("zz"), None);
        assert_eq!(ScenarioKey::from_hex(&"0".repeat(31)), None);
    }
}

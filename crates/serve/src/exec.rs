//! The incremental sharded executor: expand a matrix, serve every cell the
//! store already holds, simulate only the misses, and aggregate a
//! [`SweepReport`] bit-identical to a cold full run.
//!
//! Identity of warm and cold answers is not a best effort — it falls out
//! of the engine's structure:
//!
//! * every `(scenario, rank point)` is simulated independently (per-point
//!   config, per-point replicate seeds derived from the scenario label),
//!   so [`run_scenario`] over a *subset* of rank points is bit-identical
//!   to the matching slice of a full run;
//! * the store's [`ScenarioKey`](crate::key::ScenarioKey) hashes every
//!   semantic input of a cell, so a hit can only be a result the cold
//!   path would have recomputed verbatim;
//! * floats round-trip the disk by bit pattern, so a record read back
//!   compares `==` to the record that was written.
//!
//! Cold cells are grouped into **shards** (one per scenario with at least
//! one miss — scenarios share profile/classification work across their
//! rank points, so splitting finer would redo it) and fanned over a pool
//! of worker threads pulling shards off a shared counter; `jobs <= 1`
//! runs inline on the caller's thread with no spawns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use depchaos_launch::{
    run_scenario, ExperimentMatrix, ProfileCache, Scenario, ScenarioResult, SweepReport,
};

use crate::codec::{CellOutcome, CellRecord, ProfileSummary};
use crate::key::{CellIdentity, ScenarioKey, ENGINE_EPOCH};
use crate::store::ResultStore;

/// What one incremental run did — the hit/miss accounting the serve front
/// door reports per batch and CI asserts on (a warm replay must show
/// `cold_cells == 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scenarios in the expanded matrix.
    pub scenarios: usize,
    /// `(scenario, rank point)` cells the matrix describes.
    pub cells_total: usize,
    /// Cells answered from the store.
    pub warm_hits: usize,
    /// Cells simulated by this run.
    pub cold_cells: usize,
    /// Scenario shards the worker pool executed (scenarios with ≥1 miss).
    pub shards: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Profiling runs this call triggered.
    pub cells_profiled: usize,
}

impl ExecStats {
    /// Warm fraction in `[0, 1]`; 1.0 for an empty matrix.
    pub fn hit_rate(&self) -> f64 {
        if self.cells_total == 0 {
            1.0
        } else {
            self.warm_hits as f64 / self.cells_total as f64
        }
    }
}

/// A sensible worker count when the caller has no opinion.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One scenario's cold slice: which rank points miss, under which keys.
struct Shard {
    scenario: usize,
    misses: Vec<(usize, ScenarioKey)>,
}

/// Run `matrix` against `store`: serve warm cells, simulate cold ones on
/// `jobs` workers, persist every fresh record, and aggregate the report in
/// matrix order. The report's `results` are bit-identical to
/// `matrix.run(profiles)` regardless of how the warm/cold line falls
/// (`cells_profiled` necessarily differs — a warm run profiles nothing).
pub fn run_matrix_incremental(
    matrix: &ExperimentMatrix,
    store: &ResultStore,
    profiles: &ProfileCache,
    jobs: usize,
) -> std::io::Result<(SweepReport, ExecStats)> {
    let scenarios = matrix.expand();
    let rank_points = matrix.effective_rank_points();
    let replicates = matrix.replicate_count();
    let base = matrix.base();
    let profiled_before = profiles.computed();

    // Phase 1: address every cell and split warm from cold.
    let mut warm: HashMap<ScenarioKey, CellRecord> = HashMap::new();
    let mut shards: Vec<Shard> = Vec::new();
    let mut keys: Vec<Vec<(usize, ScenarioKey)>> = Vec::with_capacity(scenarios.len());
    for (i, s) in scenarios.iter().enumerate() {
        let spec = s.spec();
        let mut cell_keys = Vec::with_capacity(rank_points.len());
        let mut misses = Vec::new();
        for &ranks in &rank_points {
            let key = CellIdentity { spec: &spec, ranks, replicates, base }.key();
            cell_keys.push((ranks, key));
            match store.get(key) {
                Some(rec) => {
                    warm.insert(key, rec);
                }
                None => misses.push((ranks, key)),
            }
        }
        keys.push(cell_keys);
        if !misses.is_empty() {
            shards.push(Shard { scenario: i, misses });
        }
    }
    let cells_total = scenarios.len() * rank_points.len();
    let warm_hits = warm.len();
    let cold_cells = cells_total - warm_hits;

    // Phase 2: simulate the shards. Workers pull off a shared counter —
    // dynamic load balancing, since shard costs vary by orders of
    // magnitude across workloads.
    let workers = jobs.max(1).min(shards.len().max(1));
    let fresh: Vec<Mutex<Option<Vec<CellRecord>>>> =
        shards.iter().map(|_| Mutex::new(None)).collect();
    let run_shard = |shard: &Shard| -> Vec<CellRecord> {
        let s = &scenarios[shard.scenario];
        let pts: Vec<usize> = shard.misses.iter().map(|&(r, _)| r).collect();
        let result = run_scenario(s, base, replicates, &pts, profiles);
        records_of(&result, &shard.misses)
    };
    if workers <= 1 {
        for (shard, slot) in shards.iter().zip(&fresh) {
            *slot.lock() = Some(run_shard(shard));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..workers {
                sc.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(shard) = shards.get(i) else { break };
                    *fresh[i].lock() = Some(run_shard(shard));
                });
            }
        });
    }

    // Phase 3: persist the fresh records and fold them into the warm map.
    for slot in &fresh {
        let records = slot.lock().take().expect("every shard ran");
        for rec in records {
            store.put(rec.clone())?;
            warm.insert(rec.key, rec);
        }
    }

    // Phase 4: aggregate in matrix order — the exact shape `run()` builds.
    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .zip(&keys)
        .map(|(s, cell_keys)| {
            let recs: Vec<&CellRecord> =
                cell_keys.iter().filter_map(|(_, k)| warm.get(k)).collect();
            assemble(s, &recs)
        })
        .collect();

    let stats = ExecStats {
        scenarios: scenarios.len(),
        cells_total,
        warm_hits,
        cold_cells,
        shards: shards.len(),
        jobs: workers,
        cells_profiled: profiles.computed() - profiled_before,
    };
    let report = SweepReport { rank_points, results, cells_profiled: stats.cells_profiled };
    Ok((report, stats))
}

/// Split one scenario result into per-rank-point store records.
fn records_of(r: &ScenarioResult, cells: &[(usize, ScenarioKey)]) -> Vec<CellRecord> {
    let label = r.spec.label();
    cells
        .iter()
        .map(|&(ranks, key)| {
            let outcome = match (r.result_at(ranks), r.stats_at(ranks), r.queueing_at(ranks)) {
                (Some(res), Some(st), Some(q)) => {
                    Some(CellOutcome { result: *res, stats: *st, queueing: *q })
                }
                _ => None,
            };
            CellRecord {
                key,
                epoch: ENGINE_EPOCH,
                label: label.clone(),
                ranks,
                profile: ProfileSummary {
                    stat_openat: r.stat_openat,
                    misses: r.misses,
                    complete: r.complete,
                    unresolved: r.unresolved,
                },
                error: r.error.clone(),
                outcome,
            }
        })
        .collect()
}

/// Rebuild one [`ScenarioResult`] from its per-rank-point records (in rank
/// point order). The spec comes from the in-hand scenario — records only
/// carry the label — so aggregation never parses names.
fn assemble(s: &Scenario, recs: &[&CellRecord]) -> ScenarioResult {
    let spec = s.spec();
    let profile = recs.first().map(|r| r.profile).unwrap_or(ProfileSummary {
        stat_openat: 0,
        misses: 0,
        complete: false,
        unresolved: 0,
    });
    let error = recs.iter().find_map(|r| r.error.clone());
    let mut series = Vec::new();
    let mut stats = Vec::new();
    let mut queueing = Vec::new();
    if error.is_none() {
        for rec in recs {
            if let Some(o) = &rec.outcome {
                series.push((rec.ranks, o.result));
                stats.push((rec.ranks, o.stats));
                queueing.push((rec.ranks, o.queueing));
            }
        }
    }
    ScenarioResult {
        spec,
        stat_openat: profile.stat_openat,
        misses: profile.misses,
        complete: profile.complete,
        unresolved: profile.unresolved,
        error,
        series,
        stats,
        queueing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_launch::{CachePolicy, MatrixBackend, ServiceDistribution, WrapState};
    use depchaos_vfs::StorageModel;
    use depchaos_workloads::Pynamic;

    fn matrix() -> ExperimentMatrix {
        ExperimentMatrix::new()
            .workload(Pynamic::new(20))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies(CachePolicy::all())
            .distributions([
                ServiceDistribution::Deterministic,
                ServiceDistribution::log_normal(0.5),
            ])
            .replicates(3)
            .rank_points([256usize, 512])
    }

    #[test]
    fn cold_run_matches_direct_run_and_warm_replay_simulates_nothing() {
        let direct = matrix().run(&ProfileCache::new());

        let store = ResultStore::in_memory();
        let (cold, cs) =
            run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 2).unwrap();
        assert_eq!(cold.results, direct.results);
        assert_eq!(cold.rank_points, direct.rank_points);
        assert_eq!(cs.cold_cells, cs.cells_total);
        assert_eq!(cs.warm_hits, 0);
        assert_eq!(cs.cells_total, 8 * 2);
        assert_eq!(store.len(), cs.cells_total);

        // Warm replay: fresh profile cache proves nothing re-profiles or
        // re-simulates — every answer comes off the store.
        let warm_profiles = ProfileCache::new();
        let (warm, ws) = run_matrix_incremental(&matrix(), &store, &warm_profiles, 2).unwrap();
        assert_eq!(warm.results, direct.results);
        assert_eq!(ws.cold_cells, 0);
        assert_eq!(ws.warm_hits, ws.cells_total);
        assert_eq!(ws.shards, 0);
        assert_eq!(ws.cells_profiled, 0);
        assert_eq!(warm_profiles.computed(), 0);
        assert!((ws.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_warmth_runs_exactly_the_missing_cells() {
        let store = ResultStore::in_memory();
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();

        // Grow the matrix by one rank point: only the new column is cold.
        let grown = matrix().rank_points([1024usize]);
        let (report, stats) =
            run_matrix_incremental(&grown, &store, &ProfileCache::new(), 4).unwrap();
        assert_eq!(stats.cells_total, 8 * 3);
        assert_eq!(stats.cold_cells, 8);
        assert_eq!(stats.warm_hits, 16);
        assert_eq!(stats.shards, 8, "every scenario misses exactly its new point");

        // And the merged report equals a cold run of the grown matrix.
        let direct = grown.run(&ProfileCache::new());
        assert_eq!(report.results, direct.results);
    }

    #[test]
    fn editing_one_axis_invalidates_exactly_the_affected_cells() {
        let store = ResultStore::in_memory();
        let (_, cold) = run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
        assert_eq!(cold.cold_cells, 16);

        // A new distribution value re-keys only the cells that carry it:
        // the deterministic half of the matrix stays warm.
        let edited = ExperimentMatrix::new()
            .workload(Pynamic::new(20))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies(CachePolicy::all())
            .distributions([
                ServiceDistribution::Deterministic,
                ServiceDistribution::log_normal(0.75),
            ])
            .replicates(3)
            .rank_points([256usize, 512]);
        let (_, stats) = run_matrix_incremental(&edited, &store, &ProfileCache::new(), 1).unwrap();
        assert_eq!(stats.warm_hits, 8, "deterministic cells untouched");
        assert_eq!(stats.cold_cells, 8, "exactly the lognormal cells re-ran");
    }

    #[test]
    fn error_cells_are_stored_and_served_warm() {
        use depchaos_core::LoaderBackend;
        // The future loader cannot resolve or wrap the stock pynamic world;
        // the cells are errors, and errors are results too.
        let m = ExperimentMatrix::new()
            .workload(Pynamic::new(10))
            .backend(MatrixBackend::Stock(LoaderBackend::future()))
            .rank_points([256usize]);
        let store = ResultStore::in_memory();
        let (cold, _) = run_matrix_incremental(&m, &store, &ProfileCache::new(), 1).unwrap();
        let warm_profiles = ProfileCache::new();
        let (warm, ws) = run_matrix_incremental(&m, &store, &warm_profiles, 1).unwrap();
        assert_eq!(warm.results, cold.results);
        assert_eq!(ws.cold_cells, 0);
        assert_eq!(warm_profiles.computed(), 0, "error cells answer without re-profiling");
        let wrapped = warm.find(|s| s.wrap == WrapState::Wrapped).pop().unwrap();
        assert!(wrapped.error.is_some());
    }
}

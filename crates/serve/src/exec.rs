//! The incremental batched executor: expand a matrix, serve every cell the
//! store already holds, simulate only the misses, and aggregate a
//! [`SweepReport`] bit-identical to a cold full run.
//!
//! Identity of warm and cold answers is not a best effort — it falls out
//! of the engine's structure:
//!
//! * every `(scenario, rank point)` is simulated independently (per-point
//!   config, per-point replicate seeds derived from the scenario label),
//!   so a *subset* of rank points is bit-identical to the matching slice
//!   of a full run;
//! * the store's [`ScenarioKey`] hashes every
//!   semantic input of a cell, so a hit can only be a result the cold
//!   path would have recomputed verbatim;
//! * floats round-trip the disk by bit pattern, so a record read back
//!   compares `==` to the record that was written.
//!
//! The cold side runs in two stages. Profiling — the expensive part — is
//! fanned over a pool of worker threads pulling unique cold *cells* off a
//! shared counter (`jobs <= 1` runs inline on the caller's thread with no
//! spawns). Simulation then feeds every cold `(scenario, rank point)` —
//! the **miss** work unit, finer than the old whole-scenario shards, so a
//! skewed what-if batch costs exactly its missing points — into one
//! columnar [`BatchPlan`] and executes the
//! whole backlog in a single pass. Each scenario is classified once, and
//! the `Arc<ClassifiedStream>` handed out by the shared
//! [`ProfileCache`] is what every one of its miss rows borrows.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use depchaos_launch::{
    mg1_bounds, replicate_seed, run_adaptive_units, scenario_seed, validate_against_mg1,
    AdaptiveUnit, BatchPlan, CellProfile, ClassifiedStream, ExperimentMatrix, LaunchConfig,
    LaunchStats, ProfileCache, Scenario, ScenarioResult, ScenarioSpec, SweepReport,
};

use crate::codec::{CellOutcome, CellRecord, ProfileSummary};
use crate::key::{CellIdentity, ScenarioKey, ENGINE_EPOCH};
use crate::store::ResultStore;

/// What one incremental run did — the hit/miss accounting the serve front
/// door reports per batch and CI asserts on (a warm replay must show
/// `cold_cells == 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Scenarios in the expanded matrix.
    pub scenarios: usize,
    /// `(scenario, rank point)` cells the matrix describes.
    pub cells_total: usize,
    /// Cells answered from the store.
    pub warm_hits: usize,
    /// Cells simulated by this run.
    pub cold_cells: usize,
    /// Rank-point work units fed to the batch planner (== `cold_cells`;
    /// kept separate because it counts planner inputs, not store deltas).
    pub shards: usize,
    /// Worker threads the profiling pool used.
    pub jobs: usize,
    /// Profiling runs this call triggered.
    pub cells_profiled: usize,
    /// Cold cells whose profiling run panicked. Each is isolated by a
    /// per-cell `catch_unwind`, reported as a failed cell, and *not*
    /// persisted — the rest of the batch completes normally.
    pub panics: usize,
}

impl ExecStats {
    /// Warm fraction in `[0, 1]`; 1.0 for an empty matrix.
    pub fn hit_rate(&self) -> f64 {
        if self.cells_total == 0 {
            1.0
        } else {
            self.warm_hits as f64 / self.cells_total as f64
        }
    }
}

/// A sensible worker count when the caller has no opinion.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One cold `(scenario, rank point)` cell: the work unit the batch
/// planner consumes.
struct Miss {
    scenario: usize,
    ranks: usize,
    key: ScenarioKey,
}

/// Per-scenario cold-side prep, shared by every miss of the scenario:
/// the derived config and either the (profile, classification) pair —
/// the classification an `Arc` straight out of the [`ProfileCache`] — or
/// the profiling error.
struct Prep {
    spec: ScenarioSpec,
    cfg: LaunchConfig,
    outcome: Result<(Arc<CellProfile>, Arc<ClassifiedStream>), String>,
    /// The error in `outcome` is a caught profiling panic. Panicked cells
    /// are reported but never persisted — a crash is not a result.
    panicked: bool,
}

/// Render a caught panic payload (the `&str`/`String` cases `panic!`
/// produces; anything else is named as such).
fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `matrix` against `store`: serve warm cells, profile cold cells on
/// `jobs` workers, simulate every miss in one batched pass, persist every
/// fresh record, and aggregate the report in matrix order. The report's
/// `results` are bit-identical to `matrix.run(profiles)` regardless of
/// how the warm/cold line falls (`cells_profiled` necessarily differs —
/// a warm run profiles nothing).
pub fn run_matrix_incremental(
    matrix: &ExperimentMatrix,
    store: &ResultStore,
    profiles: &ProfileCache,
    jobs: usize,
) -> std::io::Result<(SweepReport, ExecStats)> {
    let scenarios = matrix.expand();
    let rank_points = matrix.effective_rank_points();
    let replicates = matrix.replicate_count();
    let base = matrix.base();
    let profiled_before = profiles.computed();

    // Phase 1: address every cell and split warm from cold. Misses are
    // collected per rank point — the planner's row granularity.
    let mut warm: HashMap<ScenarioKey, CellRecord> = HashMap::new();
    let mut misses: Vec<Miss> = Vec::new();
    let mut keys: Vec<Vec<(usize, ScenarioKey)>> = Vec::with_capacity(scenarios.len());
    for (i, s) in scenarios.iter().enumerate() {
        let spec = s.spec();
        let mut cell_keys = Vec::with_capacity(rank_points.len());
        for &ranks in &rank_points {
            let key = CellIdentity {
                spec: &spec,
                ranks,
                replicates,
                adaptive: matrix.adaptive_control(),
                base,
            }
            .key();
            cell_keys.push((ranks, key));
            match store.get(key) {
                Some(rec) => {
                    warm.insert(key, rec);
                }
                None => misses.push(Miss { scenario: i, ranks, key }),
            }
        }
        keys.push(cell_keys);
    }
    let cells_total = scenarios.len() * rank_points.len();
    let warm_hits = warm.len();
    let cold_cells = cells_total - warm_hits;

    // Phase 2a: profile every unique cold cell. Workers pull cells off a
    // shared counter — dynamic load balancing, since profiling costs vary
    // by orders of magnitude across workloads.
    let mut cold_scenarios: Vec<usize> = Vec::new();
    for m in &misses {
        if cold_scenarios.last() != Some(&m.scenario) {
            cold_scenarios.push(m.scenario);
        }
    }
    let mut cold_cell_scenarios: Vec<&Scenario> = Vec::new();
    let mut seen_cells = std::collections::HashSet::new();
    for &i in &cold_scenarios {
        if seen_cells.insert(scenarios[i].cell_key()) {
            cold_cell_scenarios.push(&scenarios[i]);
        }
    }
    let workers = jobs.max(1).min(cold_cell_scenarios.len().max(1));
    // Each profiling run is isolated behind its own `catch_unwind`: a
    // workload that panics mid-install poisons only its own cell (the
    // cache entry is simply never filled — `parking_lot` mutexes don't
    // poison), and every other cell of the batch completes. Workers
    // discard the verdict; phase 2b re-calls and keeps it.
    let profile_cell = |s: &Scenario| {
        catch_unwind(AssertUnwindSafe(|| {
            profiles.get_or_profile(s.workload.as_ref(), &s.backend, s.storage)
        }))
    };
    if workers <= 1 {
        for s in &cold_cell_scenarios {
            let _ = profile_cell(s);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|sc| {
            for _ in 0..workers {
                sc.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = cold_cell_scenarios.get(i) else { break };
                    let _ = profile_cell(s);
                });
            }
        });
    }

    // Phase 2b: derive each cold scenario's config (seeded from its
    // label, exactly as a full run does) and classify it once — the
    // shared `Arc<ClassifiedStream>` every one of its misses borrows.
    let preps: HashMap<usize, Prep> = cold_scenarios
        .iter()
        .map(|&i| {
            let s = &scenarios[i];
            let spec = s.spec();
            let mut cfg = s.cache.apply(base.clone());
            cfg.service_dist = s.dist;
            cfg.fault = s.fault;
            cfg.topology = s.topology;
            cfg.seed = scenario_seed(base.seed, &spec.label());
            // Phase 2a warmed the cache, so this re-call is a lookup —
            // unless the cell's profiling panicked, in which case it
            // panics again here, caught again, and becomes the outcome.
            let (outcome, panicked) = match profile_cell(s) {
                Ok(cell) => (
                    match cell.outcome(s.wrap) {
                        Ok(p) => {
                            let stream = profiles.classified(&cell.key, s.wrap, &p.log, &cfg);
                            Ok((Arc::clone(&cell), stream))
                        }
                        Err(e) => Err(e.clone()),
                    },
                    false,
                ),
                Err(e) => (Err(format!("panic in profiling: {}", panic_msg(e))), true),
            };
            (i, Prep { spec, cfg, outcome, panicked })
        })
        .collect();

    // Phase 2c: simulate the cold backlog. Under fixed K every miss is K
    // replicate rows of one columnar plan, identical to the grid a full
    // run gathers. Under adaptive control each miss becomes one
    // [`AdaptiveUnit`] of the shared multi-round driver — the stopping
    // decision is a pure function of the unit alone, so a miss stops at
    // the same K it would in a cold full run no matter how the warm/cold
    // line falls (and the per-round plans still deduplicate kernels
    // across the backlog).
    let miss_reps: Vec<Vec<depchaos_launch::LaunchResult>> = match matrix.adaptive_control() {
        Some(ctl) => {
            let mut units: Vec<AdaptiveUnit<'_>> = Vec::new();
            let mut unit_of: Vec<Option<usize>> = Vec::with_capacity(misses.len());
            for m in &misses {
                let prep = &preps[&m.scenario];
                match &prep.outcome {
                    Ok((_, stream)) => {
                        unit_of.push(Some(units.len()));
                        units.push(AdaptiveUnit {
                            stream,
                            cfg: prep.cfg.clone().with_ranks(m.ranks),
                        });
                    }
                    Err(_) => unit_of.push(None),
                }
            }
            let mut per_unit = run_adaptive_units(&units, ctl);
            unit_of
                .iter()
                .map(|u| u.map(|i| std::mem::take(&mut per_unit[i])).unwrap_or_default())
                .collect()
        }
        None => {
            let mut plan = BatchPlan::new();
            let mut miss_rows: Vec<usize> = Vec::with_capacity(misses.len());
            for m in &misses {
                let prep = &preps[&m.scenario];
                let Ok((_, stream)) = &prep.outcome else {
                    miss_rows.push(0);
                    continue;
                };
                let id = plan.stream(stream);
                let k = if prep.cfg.service_dist.is_deterministic() && !prep.cfg.fault.takes_draws()
                {
                    1
                } else {
                    replicates.max(1)
                };
                for r in 0..k {
                    let cfg = prep
                        .cfg
                        .clone()
                        .with_ranks(m.ranks)
                        .with_seed(replicate_seed(prep.cfg.seed, r));
                    plan.push(id, &cfg);
                }
                miss_rows.push(k);
            }
            let rows = plan.execute();
            let mut cursor = 0usize;
            miss_rows
                .iter()
                .map(|&n| {
                    let reps = rows[cursor..cursor + n].to_vec();
                    cursor += n;
                    reps
                })
                .collect()
        }
    };

    // Phase 3: scatter the replicate vectors into per-rank-point records,
    // persist them, and fold them into the warm map. Panicked cells are
    // folded into the report but NOT persisted: a crash is transient
    // evidence of a bug, not a reproducible result the store should keep
    // serving.
    let mut panics = 0usize;
    for (m, reps) in misses.iter().zip(&miss_reps) {
        let prep = &preps[&m.scenario];
        let rec = match &prep.outcome {
            Ok((cell, stream)) => {
                let p = cell
                    .outcome(prep.spec.wrap)
                    .as_ref()
                    .expect("prep outcome mirrors the cell outcome");
                let mut samples: Vec<u64> = reps.iter().map(|l| l.time_to_launch_ns).collect();
                let stats = LaunchStats::from_samples(&mut samples);
                let b = mg1_bounds(stream, &prep.cfg.clone().with_ranks(m.ranks));
                CellRecord {
                    key: m.key,
                    epoch: ENGINE_EPOCH,
                    label: prep.spec.label(),
                    ranks: m.ranks,
                    profile: ProfileSummary {
                        stat_openat: p.stat_openat,
                        misses: p.misses,
                        complete: p.complete,
                        unresolved: p.unresolved,
                    },
                    error: None,
                    outcome: Some(CellOutcome {
                        result: reps[0],
                        stats,
                        queueing: validate_against_mg1(&b, &stats),
                    }),
                }
            }
            Err(e) => CellRecord {
                key: m.key,
                epoch: ENGINE_EPOCH,
                label: prep.spec.label(),
                ranks: m.ranks,
                profile: ProfileSummary {
                    stat_openat: 0,
                    misses: 0,
                    complete: false,
                    unresolved: 0,
                },
                error: Some(e.clone()),
                outcome: None,
            },
        };
        if prep.panicked {
            panics += 1;
        } else {
            store.put(rec.clone())?;
        }
        warm.insert(rec.key, rec);
    }

    // Phase 4: aggregate in matrix order — the exact shape `run()` builds.
    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .zip(&keys)
        .map(|(s, cell_keys)| {
            let recs: Vec<&CellRecord> =
                cell_keys.iter().filter_map(|(_, k)| warm.get(k)).collect();
            assemble(s, &recs)
        })
        .collect();

    let stats = ExecStats {
        scenarios: scenarios.len(),
        cells_total,
        warm_hits,
        cold_cells,
        shards: misses.len(),
        jobs: workers,
        cells_profiled: profiles.computed() - profiled_before,
        panics,
    };
    let report = SweepReport {
        rank_points,
        results,
        cells_profiled: stats.cells_profiled,
        adaptive: matrix.adaptive_control(),
    };
    Ok((report, stats))
}

/// Rebuild one [`ScenarioResult`] from its per-rank-point records (in rank
/// point order). The spec comes from the in-hand scenario — records only
/// carry the label — so aggregation never parses names.
fn assemble(s: &Scenario, recs: &[&CellRecord]) -> ScenarioResult {
    let spec = s.spec();
    let profile = recs.first().map(|r| r.profile).unwrap_or(ProfileSummary {
        stat_openat: 0,
        misses: 0,
        complete: false,
        unresolved: 0,
    });
    let error = recs.iter().find_map(|r| r.error.clone());
    let mut series = Vec::new();
    let mut stats = Vec::new();
    let mut queueing = Vec::new();
    if error.is_none() {
        for rec in recs {
            if let Some(o) = &rec.outcome {
                series.push((rec.ranks, o.result));
                stats.push((rec.ranks, o.stats));
                queueing.push((rec.ranks, o.queueing));
            }
        }
    }
    ScenarioResult {
        spec,
        stat_openat: profile.stat_openat,
        misses: profile.misses,
        complete: profile.complete,
        unresolved: profile.unresolved,
        error,
        series,
        stats,
        queueing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_launch::{CachePolicy, MatrixBackend, ServiceDistribution, WrapState};
    use depchaos_vfs::StorageModel;
    use depchaos_workloads::Pynamic;

    fn matrix() -> ExperimentMatrix {
        ExperimentMatrix::new()
            .workload(Pynamic::new(20))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies(CachePolicy::all())
            .distributions([
                ServiceDistribution::Deterministic,
                ServiceDistribution::log_normal(0.5),
            ])
            .replicates(3)
            .rank_points([256usize, 512])
    }

    #[test]
    fn cold_run_matches_direct_run_and_warm_replay_simulates_nothing() {
        let direct = matrix().run(&ProfileCache::new());

        let store = ResultStore::in_memory();
        let (cold, cs) =
            run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 2).unwrap();
        assert_eq!(cold.results, direct.results);
        assert_eq!(cold.rank_points, direct.rank_points);
        assert_eq!(cs.cold_cells, cs.cells_total);
        assert_eq!(cs.warm_hits, 0);
        assert_eq!(cs.cells_total, 8 * 2);
        assert_eq!(store.len(), cs.cells_total);

        // Warm replay: fresh profile cache proves nothing re-profiles or
        // re-simulates — every answer comes off the store.
        let warm_profiles = ProfileCache::new();
        let (warm, ws) = run_matrix_incremental(&matrix(), &store, &warm_profiles, 2).unwrap();
        assert_eq!(warm.results, direct.results);
        assert_eq!(ws.cold_cells, 0);
        assert_eq!(ws.warm_hits, ws.cells_total);
        assert_eq!(ws.shards, 0);
        assert_eq!(ws.cells_profiled, 0);
        assert_eq!(warm_profiles.computed(), 0);
        assert!((ws.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_warmth_runs_exactly_the_missing_cells() {
        let store = ResultStore::in_memory();
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();

        // Grow the matrix by one rank point: only the new column is cold.
        let grown = matrix().rank_points([1024usize]);
        let (report, stats) =
            run_matrix_incremental(&grown, &store, &ProfileCache::new(), 4).unwrap();
        assert_eq!(stats.cells_total, 8 * 3);
        assert_eq!(stats.cold_cells, 8);
        assert_eq!(stats.warm_hits, 16);
        assert_eq!(stats.shards, 8, "every scenario misses exactly its new point");

        // And the merged report equals a cold run of the grown matrix.
        let direct = grown.run(&ProfileCache::new());
        assert_eq!(report.results, direct.results);
    }

    #[test]
    fn editing_one_axis_invalidates_exactly_the_affected_cells() {
        let store = ResultStore::in_memory();
        let (_, cold) = run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
        assert_eq!(cold.cold_cells, 16);

        // A new distribution value re-keys only the cells that carry it:
        // the deterministic half of the matrix stays warm.
        let edited = ExperimentMatrix::new()
            .workload(Pynamic::new(20))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies(CachePolicy::all())
            .distributions([
                ServiceDistribution::Deterministic,
                ServiceDistribution::log_normal(0.75),
            ])
            .replicates(3)
            .rank_points([256usize, 512]);
        let (_, stats) = run_matrix_incremental(&edited, &store, &ProfileCache::new(), 1).unwrap();
        assert_eq!(stats.warm_hits, 8, "deterministic cells untouched");
        assert_eq!(stats.cold_cells, 8, "exactly the lognormal cells re-ran");
    }

    #[test]
    fn adaptive_matrix_serves_warm_and_matches_the_direct_run() {
        use depchaos_launch::AdaptiveControl;
        let ctl = AdaptiveControl { target_rel_milli: 500, min_k: 2, max_k: 11, batch: 2 };
        let m = || matrix().replicates(11).adaptive(ctl);

        // Cold incremental == direct adaptive run, bit for bit — same
        // stopping Ks, same samples — even though the incremental path
        // batches only its misses.
        let direct = m().run(&ProfileCache::new());
        assert_eq!(direct.adaptive, Some(ctl));
        let store = ResultStore::in_memory();
        let (cold, cs) = run_matrix_incremental(&m(), &store, &ProfileCache::new(), 2).unwrap();
        assert_eq!(cold.results, direct.results);
        assert_eq!(cold.adaptive, Some(ctl));
        assert_eq!(cs.cold_cells, cs.cells_total);

        // Warm replay: the stored stopped-at K replays bit-identically
        // with zero simulation.
        let warm_profiles = ProfileCache::new();
        let (warm, ws) = run_matrix_incremental(&m(), &store, &warm_profiles, 2).unwrap();
        assert_eq!(warm.results, direct.results);
        assert_eq!(ws.cold_cells, 0);
        assert_eq!(warm_profiles.computed(), 0);

        // Stochastic cells actually stopped early somewhere (the loose
        // 50% target converges fast), and the stored stats record the K.
        let stochastic: Vec<_> = warm.find(|s| !s.dist.is_deterministic());
        assert!(!stochastic.is_empty());
        assert!(
            stochastic.iter().flat_map(|r| &r.stats).any(|(_, st)| st.replicates < 11),
            "no cell stopped early under a 50% target"
        );
        for r in warm.find(|s| s.dist.is_deterministic()) {
            for (_, st) in &r.stats {
                assert_eq!(st.replicates, 1, "exact cells keep the clamp under adaptive control");
            }
        }
    }

    #[test]
    fn adaptive_and_fixed_plans_occupy_disjoint_store_cells() {
        use depchaos_launch::AdaptiveControl;
        let ctl = AdaptiveControl { target_rel_milli: 500, min_k: 2, max_k: 3, batch: 2 };
        let store = ResultStore::in_memory();
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
        let fixed_cells = store.len();

        // The adaptive run re-keys exactly the stochastic half: the
        // deterministic cells (adaptive degenerates to the clamp) stay
        // warm, everything else is a distinct plan and a distinct cell.
        let (_, stats) =
            run_matrix_incremental(&matrix().adaptive(ctl), &store, &ProfileCache::new(), 1)
                .unwrap();
        assert_eq!(stats.warm_hits, 8, "deterministic cells shared between plans");
        assert_eq!(stats.cold_cells, 8, "stochastic cells re-keyed by the stopping rule");
        assert_eq!(store.len(), fixed_cells + 8);
    }

    #[test]
    fn a_panicking_cell_is_isolated_reported_and_not_persisted() {
        use depchaos_workloads::Poison;
        // One poisoned workload next to a healthy one; both wrap states.
        let m = || {
            ExperimentMatrix::new()
                .workload(Poison)
                .workload(Pynamic::new(10))
                .rank_points([256usize])
        };
        let store = ResultStore::in_memory();
        let (report, stats) =
            run_matrix_incremental(&m(), &store, &ProfileCache::new(), 4).unwrap();

        // The poisoned cells are failures, counted and carried as errors…
        assert_eq!(stats.panics, 2, "poison × (plain, wrapped) × 1 rank point");
        let poisoned = report.find(|s| s.workload == "poison");
        assert_eq!(poisoned.len(), 2);
        for r in &poisoned {
            let e = r.error.as_deref().unwrap();
            assert!(e.contains("panic in profiling"), "{e}");
            assert!(e.contains("deliberate install panic"), "{e}");
        }
        // …while the rest of the batch completed normally and persisted.
        for r in report.find(|s| s.workload == "pynamic-10") {
            assert!(r.error.is_none());
            assert_eq!(r.series.len(), 1);
        }
        assert_eq!(store.len(), 2, "only the healthy cells are stored");

        // A replay still treats the poisoned cells as cold (crashes are
        // not results) and serves the healthy cells warm.
        let (_, again) = run_matrix_incremental(&m(), &store, &ProfileCache::new(), 1).unwrap();
        assert_eq!(again.warm_hits, 2);
        assert_eq!(again.panics, 2);
    }

    #[test]
    fn error_cells_are_stored_and_served_warm() {
        use depchaos_core::LoaderBackend;
        // The future loader cannot resolve or wrap the stock pynamic world;
        // the cells are errors, and errors are results too.
        let m = ExperimentMatrix::new()
            .workload(Pynamic::new(10))
            .backend(MatrixBackend::Stock(LoaderBackend::future()))
            .rank_points([256usize]);
        let store = ResultStore::in_memory();
        let (cold, _) = run_matrix_incremental(&m, &store, &ProfileCache::new(), 1).unwrap();
        let warm_profiles = ProfileCache::new();
        let (warm, ws) = run_matrix_incremental(&m, &store, &warm_profiles, 1).unwrap();
        assert_eq!(warm.results, cold.results);
        assert_eq!(ws.cold_cells, 0);
        assert_eq!(warm_profiles.computed(), 0, "error cells answer without re-profiling");
        let wrapped = warm.find(|s| s.wrap == WrapState::Wrapped).pop().unwrap();
        assert!(wrapped.error.is_some());
    }
}

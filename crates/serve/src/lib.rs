//! # depchaos-serve — the persistent, incremental what-if service
//!
//! The sweep engine ([`depchaos_launch`]) answers "what does launch look
//! like across this matrix?" by simulating every cell from scratch. At
//! fleet scale the questions arrive as *deltas* — "same fleet, but wrap
//! X", "…but double the metadata servers", "…but a heavy-tailed server" —
//! and almost every cell of the implied matrix has been simulated before.
//! This crate makes the engine incremental: a content-addressed result
//! store, an executor that simulates only the misses, and a batched
//! front door for JSONL what-if queries (`depchaos-serve` in
//! `crates/cli`).
//!
//! ## The key schema ([`key`])
//!
//! A store cell is one `(scenario, rank point)` result. Its address, a
//! 128-bit [`ScenarioKey`], hashes the **full semantic identity** of the
//! cell — in order:
//!
//! | # | input | why |
//! |---|-------|-----|
//! | 1 | [`ENGINE_EPOCH`] | wholesale eviction when engine *semantics* change |
//! | 2 | workload name | the `Workload` trait makes the name the world identity |
//! | 3 | backend, storage, wrap, cache names | the discrete axes |
//! | 4 | distribution tag + integer milli parameter | never aliases on display names |
//! | 5 | fault-model tag + integer parameters | a brownout cell must never answer for a healthy one |
//! | 6 | server count + assignment-policy tag | an 8-server fleet must never answer for a single server; the policy tag keeps hash and least-loaded fleets apart |
//! | 7 | rank point, replicate **plan** (tagged: fixed effective count, or the adaptive stopping-rule parameters) | deterministic *and fault-draw-free* cells clamp to 1 under either plan, like the sweep; a draw-taking cell under [`AdaptiveControl`](depchaos_launch::AdaptiveControl) hashes the rule, never the K it stopped at |
//! | 8 | experiment seed + every calibration field of the base config | the seed domain and the cluster model |
//!
//! The hash is two independently keyed SipHash-2-4 lanes over a
//! length-prefixed field encoding; golden-vector tests pin the exact keys
//! (the on-disk format) and a property test pins the semantics: **two
//! cells share a key if and only if they would simulate identically.**
//! The full determinism story — what makes a warm hit safe to serve, and
//! why adaptive replicate control keeps cells bit-reproducible — is in
//! `docs/determinism.md` at the repository root.
//!
//! ## Invalidation rules
//!
//! Content addressing *is* the dependency tracking: every semantic input
//! is part of the address, so editing one axis value re-keys exactly the
//! affected cells — the edited cells miss, everything else stays warm.
//! There is no dependency graph to maintain and no stale-entry hazard.
//! Three rules cover the rest:
//!
//! * **Engine changes**: bump [`ENGINE_EPOCH`]; every record written under
//!   an older epoch is evicted (and counted) at store load.
//! * **Explicit eviction**: [`ResultStore::invalidate_where`] drops
//!   records by predicate (label, rank, …) without recomputing keys;
//!   [`ResultStore::compact`] makes the eviction durable.
//! * **Corruption**: a record that fails to decode (torn final append,
//!   bit rot) is skipped and counted, never served and never fatal.
//!
//! ## Incremental execution ([`exec`])
//!
//! [`run_matrix_incremental`] expands a matrix, looks every cell up,
//! fans the unique cold cells' *profiling* over a worker pool (`jobs`
//! threads pulling off a shared counter; `jobs <= 1` runs inline),
//! classifies each cold scenario once (the shared `Arc` its misses
//! borrow), feeds every cold `(scenario, rank point)` into one columnar
//! [`BatchPlan`](depchaos_launch::BatchPlan) executed in a single pass,
//! persists each fresh record, and aggregates a
//! [`SweepReport`](depchaos_launch::SweepReport) in matrix order whose
//! `results` are **bit-identical** to a cold `matrix.run()` — floats
//! round-trip the disk by IEEE bit pattern, and subset runs are
//! bit-identical to slices of full runs because every rank point is
//! simulated independently. [`ExecStats`] carries the warm/cold counters
//! a warm replay is judged by (`cold_cells == 0`).
//!
//! ## The request format ([`requests`])
//!
//! One JSONL request per line: mandatory `id` and `base` (a named base
//! workload: `pynamic-N`, `pynamic-rpath-N`, `axom-SEED`, `rocm-4.5`,
//! `rocm-mixed`, `emacs`), plus axis deltas `wrap`, `cache`, `backend`,
//! `storage`, `dist`, `fault` (report spellings — `fault` takes
//! `stall-AT-DUR`, `loss-MILLI-TIMEOUT-BACKOFF-RETRIES`,
//! `stragglers-FRAC-SLOW`), `ranks` (list), `replicates`, `seed`,
//! `servers` (the modeled N-server metadata fleet — the DES topology
//! axis, with `assign` picking `hash` or `least` routing), and
//! `servers_ideal` (the coordination-free approximation:
//! `meta_service_ns / N`). Answers are one JSONL line per (query, rank
//! point) carrying only simulator-deterministic integers; batch and
//! per-query hit/miss/latency counters go to a separate stats document.
//! A cell whose profiling *panics* is isolated (`catch_unwind` per cell):
//! the rest of the batch completes, the cell answers with an error line,
//! it is never persisted, and the batch exits nonzero.
//! An example session:
//!
//! ```text
//! $ cat batch.jsonl
//! {"id":"status-quo","base":"pynamic-200"}
//! {"id":"wrap-everything","base":"pynamic-200","wrap":"wrapped"}
//! $ depchaos-serve --store /var/depchaos --requests batch.jsonl \
//!       --out answers.jsonl --stats stats.json --jobs 8
//! $ head -1 answers.jsonl
//! {"id":"status-quo","label":"pynamic-200/glibc/nfs/plain/cold/deterministic","ranks":512,"launch_ns":...,"q_within":true}
//! $ depchaos-serve --store /var/depchaos --requests batch.jsonl \
//!       --out answers2.jsonl --stats stats2.json
//! $ cmp answers.jsonl answers2.jsonl && grep -o '"total_cold_cells":0' stats2.json
//! "total_cold_cells":0
//! ```
//!
//! The second run simulated nothing — same bytes, all hits.

pub mod codec;
pub mod exec;
pub mod key;
pub mod requests;
pub mod store;

pub use codec::{CellOutcome, CellRecord, ProfileSummary};
pub use exec::{default_jobs, run_matrix_incremental, ExecStats};
pub use key::{CellIdentity, ScenarioKey, ENGINE_EPOCH};
pub use requests::{serve_batch, BatchReport, QueryOutcome, WhatIfRequest};
pub use store::{LoadStats, ResultStore};

//! The batched front door: what-if requests in, answers out.
//!
//! A batch is JSONL — one request per line:
//!
//! ```json
//! {"id":"q1","base":"pynamic-200"}
//! {"id":"q2","base":"pynamic-200","wrap":"wrapped","cache":"broadcast"}
//! {"id":"q3","base":"axom-7","dist":"lognormal-500","ranks":[512,4096],"servers":4}
//! {"id":"q4","base":"pynamic-200","fault":"stall-2000000000-10000000000"}
//! ```
//!
//! `id` and `base` are mandatory; everything else is a **delta** against
//! the named base scenario, which defaults to the paper cell: glibc
//! backend, NFS storage, plain binary, cold caches, deterministic server,
//! healthy (no fault), ranks 512/1024/2048, [`DEFAULT_REPLICATES`]
//! replicates. Recognised base workloads: `pynamic-N`, `pynamic-rpath-N`,
//! `axom-SEED`, `rocm-4.5`, `rocm-mixed`, `emacs` (plus `poison`, the
//! deliberately-panicking panic-isolation fixture — never useful outside
//! tests). Axis deltas take the exact names the reports print (`wrap`,
//! `cache`, `backend`, `storage`, `dist`, `fault` — fault spellings are
//! [`FaultModel::parse`]'s: `none`, `stall-AT-DUR`,
//! `loss-MILLI-TIMEOUT-BACKOFF-RETRIES`, `stragglers-FRAC-SLOW`); `ranks`
//! replaces the rank-point list; `replicates` and `seed` override the
//! sweep parameters. `servers: N` runs the **modeled** N-server fleet —
//! the real [`ServerTopology`] axis of the DES, with `assign` picking the
//! request-routing policy (`hash`, the default, or `least`) — while
//! `servers_ideal: N` keeps the old perfect-scaling approximation (per-op
//! service time divided by N, coordination-free: an optimistic lower
//! bound the modeled fleet can approach but, contended, never beat).
//!
//! Each answer is one JSONL line per `(query, rank point)` carrying only
//! simulator-deterministic integers (or the cell's error string), so a
//! warm replay of the same batch must produce a **byte-identical** answer
//! file — CI asserts exactly that. Hit/miss/latency accounting goes to a
//! separate stats document ([`BatchReport::stats_json`]), which is where
//! the nondeterministic numbers (wall-clock) live.

use std::sync::Arc;
use std::time::Instant;

use depchaos_launch::{
    AssignPolicy, CachePolicy, ExperimentMatrix, FaultModel, LaunchConfig, MatrixBackend,
    ProfileCache, ServerTopology, ServiceDistribution, WrapState, DEFAULT_REPLICATES,
};
use depchaos_vfs::StorageModel;
use depchaos_workloads::{Axom, Emacs, Poison, Pynamic, PynamicRpath, Rocm, Workload};

use crate::codec::{esc, str_field, u64_field};
use crate::exec::{run_matrix_incremental, ExecStats};
use crate::store::ResultStore;

/// One parsed what-if query: a named base scenario plus axis deltas.
#[derive(Debug, Clone)]
pub struct WhatIfRequest {
    pub id: String,
    /// The base workload name (`pynamic-N`, `axom-SEED`, …).
    pub base: String,
    pub backend: MatrixBackend,
    pub storage: StorageModel,
    pub wrap: WrapState,
    pub cache: CachePolicy,
    pub dist: ServiceDistribution,
    pub fault: FaultModel,
    pub ranks: Vec<usize>,
    /// Metadata servers backing the service — the modeled
    /// [`ServerTopology`] axis.
    pub servers: u64,
    /// Request-routing policy for the modeled fleet (`hash` by default).
    pub assign: AssignPolicy,
    /// Perfect-scaling approximation: divide the per-op service time by
    /// this count instead of modeling the fleet. 1 = off.
    pub servers_ideal: u64,
    pub replicates: usize,
    /// Experiment seed override, when given.
    pub seed: Option<u64>,
}

/// Parse a `[usize, ...]` array following `"key":`.
fn usize_list_field(line: &str, key: &str) -> Option<Vec<usize>> {
    let at = line.find(&format!("\"{key}\":"))?;
    let rest = line[at + key.len() + 3..].trim_start().strip_prefix('[')?;
    let inner = &rest[..rest.find(']')?];
    if inner.trim().is_empty() {
        return None;
    }
    inner.split(',').map(|t| t.trim().parse().ok()).collect()
}

/// Resolve a base-workload name to a workload instance.
fn resolve_workload(name: &str) -> Result<Arc<dyn Workload>, String> {
    let libs = |n: &str| -> Result<usize, String> {
        let n: usize = n.parse().map_err(|_| format!("bad library count in {name:?}"))?;
        if n == 0 || n > 5000 {
            return Err(format!("library count out of range in {name:?} (1..=5000)"));
        }
        Ok(n)
    };
    if let Some(n) = name.strip_prefix("pynamic-rpath-") {
        return Ok(Arc::new(PynamicRpath::new(libs(n)?)));
    }
    if let Some(n) = name.strip_prefix("pynamic-") {
        return Ok(Arc::new(Pynamic::new(libs(n)?)));
    }
    if let Some(seed) = name.strip_prefix("axom-") {
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed in {name:?}"))?;
        return Ok(Arc::new(Axom::new(seed)));
    }
    match name {
        "emacs" => Ok(Arc::new(Emacs)),
        "rocm-4.5" => Ok(Arc::new(Rocm::matched())),
        "rocm-mixed" => Ok(Arc::new(Rocm::mixed())),
        // The panic-isolation fixture: installs by panicking. Accepted so
        // integration tests (and the curious) can poison one cell of a
        // batch; deliberately absent from the unknown-workload hint below.
        "poison" => Ok(Arc::new(Poison)),
        _ => Err(format!(
            "unknown base workload {name:?} \
             (try pynamic-N, pynamic-rpath-N, axom-SEED, rocm-4.5, rocm-mixed, emacs)"
        )),
    }
}

impl WhatIfRequest {
    /// Parse one request line. Errors name the offending field.
    pub fn parse(line: &str) -> Result<WhatIfRequest, String> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err("request is not a JSON object".to_string());
        }
        let has = |key: &str| line.contains(&format!("\"{key}\":"));
        let id = str_field(line, "id").ok_or("missing field \"id\"")?;
        let base = str_field(line, "base").ok_or("missing field \"base\"")?;
        resolve_workload(&base)?;
        let axis = |key: &str| -> Result<Option<String>, String> {
            if !has(key) {
                return Ok(None);
            }
            str_field(line, key).map(Some).ok_or_else(|| format!("malformed field {key:?}"))
        };
        let backend = match axis("backend")? {
            Some(s) => MatrixBackend::parse(&s).ok_or(format!("unknown backend {s:?}"))?,
            None => MatrixBackend::glibc(),
        };
        let storage = match axis("storage")? {
            Some(s) => StorageModel::parse(&s).ok_or(format!("unknown storage model {s:?}"))?,
            None => StorageModel::Nfs,
        };
        let wrap = match axis("wrap")? {
            Some(s) => WrapState::parse(&s).ok_or(format!("unknown wrap state {s:?}"))?,
            None => WrapState::Plain,
        };
        let cache = match axis("cache")? {
            Some(s) => CachePolicy::parse(&s).ok_or(format!("unknown cache policy {s:?}"))?,
            None => CachePolicy::Cold,
        };
        let dist = match axis("dist")? {
            Some(s) => {
                ServiceDistribution::parse(&s).ok_or(format!("unknown distribution {s:?}"))?
            }
            None => ServiceDistribution::Deterministic,
        };
        let fault = match axis("fault")? {
            Some(s) => FaultModel::parse(&s).ok_or(format!("unknown fault model {s:?}"))?,
            None => FaultModel::None,
        };
        let ranks = if has("ranks") {
            usize_list_field(line, "ranks").ok_or("malformed field \"ranks\"")?
        } else {
            vec![512, 1024, 2048]
        };
        let servers = if has("servers") {
            match u64_field(line, "servers") {
                Some(n) if n >= 1 => n,
                _ => return Err("field \"servers\" must be an integer ≥ 1".to_string()),
            }
        } else {
            1
        };
        let assign = match axis("assign")? {
            Some(s) => AssignPolicy::parse(&s).ok_or(format!("unknown assign policy {s:?}"))?,
            None => AssignPolicy::HashByNode,
        };
        let servers_ideal = if has("servers_ideal") {
            match u64_field(line, "servers_ideal") {
                Some(n) if n >= 1 => n,
                _ => return Err("field \"servers_ideal\" must be an integer ≥ 1".to_string()),
            }
        } else {
            1
        };
        let replicates = if has("replicates") {
            u64_field(line, "replicates").ok_or("malformed field \"replicates\"")? as usize
        } else {
            DEFAULT_REPLICATES
        };
        let seed = if has("seed") {
            Some(u64_field(line, "seed").ok_or("malformed field \"seed\"")?)
        } else {
            None
        };
        Ok(WhatIfRequest {
            id,
            base,
            backend,
            storage,
            wrap,
            cache,
            dist,
            fault,
            ranks,
            servers,
            assign,
            servers_ideal,
            replicates,
            seed,
        })
    }

    /// The single-scenario matrix this query describes.
    pub fn matrix(&self) -> Result<ExperimentMatrix, String> {
        let workload = resolve_workload(&self.base)?;
        let mut base = LaunchConfig::default();
        if let Some(seed) = self.seed {
            base.seed = seed;
        }
        // The ideal-scaling what-if divides the per-op service time,
        // coordination-free; the `servers` axis below models the fleet.
        base.meta_service_ns = (base.meta_service_ns / self.servers_ideal).max(1);
        let topology = ServerTopology { servers: self.servers as usize, assign: self.assign };
        Ok(ExperimentMatrix::new()
            .workload_arc(workload)
            .backend(self.backend.clone())
            .storage(self.storage)
            .wrap_states([self.wrap])
            .cache_policies([self.cache])
            .distribution(self.dist)
            .fault(self.fault)
            .topologies([topology])
            .rank_points(self.ranks.iter().copied())
            .replicates(self.replicates)
            .base_config(base))
    }
}

/// One served query: its deterministic answer lines plus the accounting.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub id: String,
    /// JSONL answer lines (one per rank point; one error line for error
    /// cells or unparseable requests).
    pub answers: Vec<String>,
    pub stats: ExecStats,
    pub elapsed_us: u128,
    pub parse_error: Option<String>,
}

/// A served batch.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    pub queries: Vec<QueryOutcome>,
}

impl BatchReport {
    /// Every answer line, in batch order — simulator-deterministic, so a
    /// warm replay emits identical bytes.
    pub fn answers_jsonl(&self) -> String {
        let mut out = String::new();
        for q in &self.queries {
            for line in &q.answers {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Did anything go wrong serving this batch: a request that failed to
    /// parse, or a cell whose profiling **panicked** (isolated, reported,
    /// never persisted). Simulated error *cells* — loads the engine
    /// resolves to a failure — are data, not failures.
    pub fn had_errors(&self) -> bool {
        self.queries.iter().any(|q| q.parse_error.is_some() || q.stats.panics > 0)
    }

    /// The batch accounting as one JSON document: totals (including the
    /// `total_cold_cells` / `hit_rate` fields the CI smoke greps), the
    /// per-query counters, and the store's load stats.
    pub fn stats_json(&self, store: &ResultStore) -> String {
        let cells: usize = self.queries.iter().map(|q| q.stats.cells_total).sum();
        let warm: usize = self.queries.iter().map(|q| q.stats.warm_hits).sum();
        let cold: usize = self.queries.iter().map(|q| q.stats.cold_cells).sum();
        let parse_errors = self.queries.iter().filter(|q| q.parse_error.is_some()).count();
        let panics: usize = self.queries.iter().map(|q| q.stats.panics).sum();
        let elapsed: u128 = self.queries.iter().map(|q| q.elapsed_us).sum();
        let hit_rate = if cells == 0 { 1.0 } else { warm as f64 / cells as f64 };
        let mut s = format!(
            "{{\"queries\":{},\"cells\":{cells},\"total_warm_hits\":{warm},\
             \"total_cold_cells\":{cold},\"hit_rate\":{hit_rate:.3},\
             \"parse_errors\":{parse_errors},\"panics\":{panics},\"elapsed_us\":{elapsed},\n \
             \"per_query\":[",
            self.queries.len(),
        );
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n  {{\"id\":\"{}\",\"cells\":{},\"warm_hits\":{},\"cold_cells\":{},\
                 \"elapsed_us\":{}}}",
                esc(&q.id),
                q.stats.cells_total,
                q.stats.warm_hits,
                q.stats.cold_cells,
                q.elapsed_us,
            ));
        }
        let ls = store.load_stats();
        s.push_str(&format!(
            "],\n \"store\":{{\"records\":{},\"loaded\":{},\"corrupt_skipped\":{},\
             \"epoch_evicted\":{},\"duplicates\":{}}}}}\n",
            store.len(),
            ls.loaded,
            ls.corrupt_skipped,
            ls.epoch_evicted,
            ls.duplicates,
        ));
        s
    }
}

/// Serve one batch of JSONL requests against a store. Queries run in batch
/// order (each one fans its cold-cell profiling over `jobs` workers and
/// batch-simulates its misses in one planner pass); a request
/// that fails to parse becomes an error answer and marks the batch (exit
/// code 1 at the CLI), without stopping later queries. I/O errors from the
/// store are real errors.
pub fn serve_batch(
    input: &str,
    store: &ResultStore,
    profiles: &ProfileCache,
    jobs: usize,
) -> std::io::Result<BatchReport> {
    let mut report = BatchReport::default();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let parsed = WhatIfRequest::parse(line).and_then(|r| r.matrix().map(|m| (r, m)));
        let (req, matrix) = match parsed {
            Ok(p) => p,
            Err(e) => {
                let id = str_field(line, "id").unwrap_or_else(|| format!("line-{}", lineno + 1));
                report.queries.push(QueryOutcome {
                    answers: vec![format!("{{\"id\":\"{}\",\"error\":\"{}\"}}", esc(&id), esc(&e))],
                    id,
                    stats: ExecStats::default(),
                    elapsed_us: started.elapsed().as_micros(),
                    parse_error: Some(e),
                });
                continue;
            }
        };
        let (sweep, stats) = run_matrix_incremental(&matrix, store, profiles, jobs)?;
        let mut answers = Vec::new();
        for r in &sweep.results {
            let label = r.spec.label();
            if let Some(e) = &r.error {
                answers.push(format!(
                    "{{\"id\":\"{}\",\"label\":\"{}\",\"error\":\"{}\"}}",
                    esc(&req.id),
                    esc(&label),
                    esc(e)
                ));
                continue;
            }
            for &ranks in &sweep.rank_points {
                let (Some(l), Some(st), Some(q)) =
                    (r.result_at(ranks), r.stats_at(ranks), r.queueing_at(ranks))
                else {
                    continue;
                };
                answers.push(format!(
                    "{{\"id\":\"{}\",\"label\":\"{}\",\"ranks\":{ranks},\"launch_ns\":{},\
                     \"nodes\":{},\"server_ops\":{},\"local_ops\":{},\"peak_queue\":{},\
                     \"replicates\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\
                     \"p99_ns\":{},\"q_within\":{}}}",
                    esc(&req.id),
                    esc(&label),
                    l.time_to_launch_ns,
                    l.nodes,
                    l.server_ops,
                    l.local_ops,
                    l.peak_queue_depth,
                    st.replicates,
                    st.mean_ns,
                    st.p50_ns,
                    st.p95_ns,
                    st.p99_ns,
                    q.within,
                ));
            }
        }
        report.queries.push(QueryOutcome {
            id: req.id,
            answers,
            stats,
            elapsed_us: started.elapsed().as_micros(),
            parse_error: None,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults_and_deltas() {
        let q = WhatIfRequest::parse(r#"{"id":"q1","base":"pynamic-20"}"#).unwrap();
        assert_eq!(q.id, "q1");
        assert_eq!(q.ranks, vec![512, 1024, 2048]);
        assert_eq!(q.wrap, WrapState::Plain);
        assert_eq!(q.fault, FaultModel::None);
        assert_eq!(q.servers, 1);
        assert_eq!(q.assign, AssignPolicy::HashByNode);
        assert_eq!(q.servers_ideal, 1);
        assert_eq!(q.replicates, DEFAULT_REPLICATES);

        let q = WhatIfRequest::parse(
            r#"{"id":"q2","base":"pynamic-20","wrap":"wrapped","cache":"broadcast",
               "dist":"lognormal-500","backend":"musl","storage":"local",
               "fault":"stall-2000000000-10000000000","assign":"least",
               "ranks":[256, 512],"servers":4,"servers_ideal":2,"replicates":3,"seed":9}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap();
        assert_eq!(q.wrap, WrapState::Wrapped);
        assert_eq!(q.cache, CachePolicy::Broadcast);
        assert_eq!(q.dist, ServiceDistribution::log_normal(0.5));
        assert_eq!(q.backend.name(), "musl");
        assert_eq!(q.storage, StorageModel::Local);
        assert_eq!(
            q.fault,
            FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 }
        );
        assert_eq!(q.ranks, vec![256, 512]);
        assert_eq!(q.servers, 4);
        assert_eq!(q.assign, AssignPolicy::LeastLoaded);
        assert_eq!(q.servers_ideal, 2);
        assert_eq!(q.replicates, 3);
        assert_eq!(q.seed, Some(9));
    }

    #[test]
    fn bad_fields_name_themselves() {
        for (line, needle) in [
            (r#"{"base":"pynamic-20"}"#, "\"id\""),
            (r#"{"id":"q"}"#, "\"base\""),
            (r#"{"id":"q","base":"frobnicator"}"#, "unknown base workload"),
            (r#"{"id":"q","base":"pynamic-0"}"#, "out of range"),
            (r#"{"id":"q","base":"pynamic-20","wrap":"sideways"}"#, "unknown wrap state"),
            (r#"{"id":"q","base":"pynamic-20","dist":"cauchy"}"#, "unknown distribution"),
            (r#"{"id":"q","base":"pynamic-20","fault":"gremlins"}"#, "unknown fault model"),
            (r#"{"id":"q","base":"pynamic-20","servers":0}"#, "\"servers\""),
            (r#"{"id":"q","base":"pynamic-20","servers_ideal":0}"#, "\"servers_ideal\""),
            (r#"{"id":"q","base":"pynamic-20","assign":"roulette"}"#, "unknown assign policy"),
            (r#"{"id":"q","base":"pynamic-20","ranks":[a]}"#, "\"ranks\""),
            ("not json", "not a JSON object"),
        ] {
            let err = WhatIfRequest::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn batch_serves_cold_then_byte_identical_warm() {
        let batch = concat!(
            r#"{"id":"base","base":"pynamic-20","ranks":[256,512]}"#,
            "\n",
            r#"{"id":"wrapped","base":"pynamic-20","wrap":"wrapped","ranks":[256,512]}"#,
            "\n",
        );
        let store = ResultStore::in_memory();
        let cold = serve_batch(batch, &store, &ProfileCache::new(), 2).unwrap();
        assert!(!cold.had_errors());
        assert_eq!(cold.queries.len(), 2);
        assert_eq!(cold.queries[0].stats.cold_cells, 2);
        assert_eq!(cold.answers_jsonl().lines().count(), 4);

        let warm = serve_batch(batch, &store, &ProfileCache::new(), 2).unwrap();
        assert_eq!(warm.answers_jsonl(), cold.answers_jsonl(), "warm replay is byte-identical");
        for q in &warm.queries {
            assert_eq!(q.stats.cold_cells, 0);
            assert_eq!(q.stats.warm_hits, 2);
        }
        let stats = warm.stats_json(&store);
        assert!(stats.contains("\"total_cold_cells\":0"), "{stats}");
        assert!(stats.contains("\"hit_rate\":1.000"), "{stats}");
    }

    #[test]
    fn server_scaling_and_wrapping_shrink_the_answer() {
        let batch = concat!(
            r#"{"id":"slow","base":"pynamic-20","ranks":[512]}"#,
            "\n",
            r#"{"id":"fast","base":"pynamic-20","ranks":[512],"servers":8}"#,
            "\n",
            r#"{"id":"wrapped","base":"pynamic-20","ranks":[512],"wrap":"wrapped"}"#,
            "\n",
        );
        let store = ResultStore::in_memory();
        let report = serve_batch(batch, &store, &ProfileCache::new(), 1).unwrap();
        let launch_ns = |q: &QueryOutcome| {
            u64_field(&q.answers[0], "launch_ns").expect("answer carries launch_ns")
        };
        let slow = launch_ns(&report.queries[0]);
        assert!(launch_ns(&report.queries[1]) < slow, "8 servers beat 1");
        assert!(launch_ns(&report.queries[2]) < slow, "shrinkwrap beats plain");
    }

    #[test]
    fn ideal_scaling_lower_bounds_the_modeled_fleet() {
        // `servers_ideal` is the coordination-free fantasy: dividing the
        // per-op service time should not lose to actually routing requests
        // across the same number of servers. Strictly true only where the
        // metadata floor dominates per-op service — the division lowers the
        // `meta_service_ns` floor but not the size-proportional read cost
        // (`cost_ns / 8`), which the modeled fleet *does* parallelise — so
        // the pin allows the read-cost share as slack.
        let batch = concat!(
            r#"{"id":"modeled","base":"pynamic-20","ranks":[512],"servers":8}"#,
            "\n",
            r#"{"id":"ideal","base":"pynamic-20","ranks":[512],"servers_ideal":8}"#,
            "\n",
        );
        let store = ResultStore::in_memory();
        let report = serve_batch(batch, &store, &ProfileCache::new(), 1).unwrap();
        assert!(!report.had_errors());
        let launch_ns = |q: &QueryOutcome| u64_field(&q.answers[0], "launch_ns").unwrap();
        let (modeled, ideal) = (launch_ns(&report.queries[0]), launch_ns(&report.queries[1]));
        assert!(
            ideal <= modeled + modeled / 20,
            "ideal 8-way division ({ideal}) must floor the modeled 8-server \
             fleet ({modeled}) up to the non-divided read-cost share"
        );
        // Distinct axes, distinct cells: the modeled fleet lives under a
        // topology label, the ideal one under a different base config.
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn fault_deltas_degrade_the_answer_and_key_separately() {
        let batch = concat!(
            r#"{"id":"healthy","base":"pynamic-20","ranks":[512]}"#,
            "\n",
            r#"{"id":"brownout","base":"pynamic-20","ranks":[512],"fault":"stall-0-10000000000"}"#,
            "\n",
        );
        let store = ResultStore::in_memory();
        let report = serve_batch(batch, &store, &ProfileCache::new(), 1).unwrap();
        assert!(!report.had_errors());
        let launch_ns = |q: &QueryOutcome| u64_field(&q.answers[0], "launch_ns").unwrap();
        let (healthy, faulted) = (launch_ns(&report.queries[0]), launch_ns(&report.queries[1]));
        assert!(
            faulted > healthy && faulted >= 10_000_000_000,
            "a from-boot 10s brownout gates the whole launch behind it \
             (healthy {healthy}, faulted {faulted})"
        );
        // Distinct fault models are distinct cells: both went cold.
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn a_poisoned_query_marks_the_batch_but_spares_its_neighbours() {
        let batch = concat!(
            r#"{"id":"ok","base":"pynamic-20","ranks":[256]}"#,
            "\n",
            r#"{"id":"boom","base":"poison","ranks":[256]}"#,
            "\n",
        );
        let store = ResultStore::in_memory();
        let report = serve_batch(batch, &store, &ProfileCache::new(), 2).unwrap();
        assert!(report.had_errors(), "a panicked cell must mark the batch");
        assert_eq!(report.queries.len(), 2, "the batch still completed");
        assert!(report.queries[0].answers[0].contains("launch_ns"));
        assert!(report.queries[1].answers[0].contains("panic in profiling"));
        assert_eq!(report.queries[1].stats.panics, 1);
        assert!(report.stats_json(&store).contains("\"panics\":1"));
        assert_eq!(store.len(), 1, "the poisoned cell is never persisted");
    }

    #[test]
    fn malformed_requests_answer_with_errors_and_mark_the_batch() {
        let batch = concat!(
            r#"{"id":"ok","base":"pynamic-20","ranks":[256]}"#,
            "\n",
            r#"{"id":"bad","base":"warp-drive"}"#,
            "\n",
        );
        let store = ResultStore::in_memory();
        let report = serve_batch(batch, &store, &ProfileCache::new(), 1).unwrap();
        assert!(report.had_errors());
        assert_eq!(report.queries.len(), 2);
        assert!(report.queries[1].answers[0].contains("unknown base workload"));
        assert!(report.stats_json(&store).contains("\"parse_errors\":1"));
    }
}

//! The persistent, content-addressed result store.
//!
//! A [`ResultStore`] is an in-memory index over [`CellRecord`]s, optionally
//! backed by an append-only `store.jsonl` under a target directory:
//!
//! * **Load** reads the log line by line. Records that fail to decode
//!   (torn final write, bit rot) are skipped and counted; records written
//!   under a different [`ENGINE_EPOCH`] are
//!   evicted and counted; duplicate keys resolve last-write-wins (the log
//!   is append-only, so the latest append is the latest truth). Loading
//!   never panics on store contents.
//! * **Append** writes one line per record and flushes — a crash tears at
//!   most the final line, which the next load skips.
//! * **Compact** rewrites the log from the live index (dropping duplicate,
//!   corrupt, and wrong-epoch bytes) into a temporary file, fsyncs it, and
//!   atomically renames it over the old log, sorted by (label, ranks) so
//!   compacted stores diff cleanly. A crash at any instant leaves either
//!   the old log or the new one — never a mix, and a stale `.tmp` from a
//!   killed compaction is simply ignored (and overwritten) next time.
//!
//! Invalidation is mostly implicit — the key hashes every semantic input,
//! so an edited axis simply stops matching — but [`ResultStore::invalidate_where`]
//! exists for explicit eviction ("drop everything touching this workload")
//! without recomputing keys.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::codec::CellRecord;
use crate::key::{ScenarioKey, ENGINE_EPOCH};

/// What loading an on-disk log found — surfaced in store stats and the CI
/// artifact so corruption is visible, not silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Live records in the index after the load.
    pub loaded: usize,
    /// Lines that failed to decode and were skipped.
    pub corrupt_skipped: usize,
    /// Records evicted because their epoch is not [`ENGINE_EPOCH`].
    pub epoch_evicted: usize,
    /// Re-appended keys resolved last-write-wins.
    pub duplicates: usize,
}

struct Inner {
    index: HashMap<ScenarioKey, CellRecord>,
    /// Open append handle, lazily created on first write.
    writer: Option<File>,
}

/// The content-addressed result store. Cheap to share by reference across
/// executor threads — all state is behind one mutex, and the hot path
/// (warm lookup) is a hash probe plus a record clone.
pub struct ResultStore {
    path: Option<PathBuf>,
    inner: Mutex<Inner>,
    load_stats: LoadStats,
}

impl ResultStore {
    /// A store with no disk backing — same semantics, process lifetime.
    /// (The report CLI uses this when `--store` is absent so the warm/cold
    /// machinery is one code path.)
    pub fn in_memory() -> ResultStore {
        ResultStore {
            path: None,
            inner: Mutex::new(Inner { index: HashMap::new(), writer: None }),
            load_stats: LoadStats::default(),
        }
    }

    /// Open (creating if needed) the store under `dir`. The log lives at
    /// `dir/store.jsonl`. Corrupt lines and wrong-epoch records are
    /// counted in [`ResultStore::load_stats`], never fatal.
    pub fn open(dir: &Path) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("store.jsonl");
        let mut index = HashMap::new();
        let mut stats = LoadStats::default();
        if path.exists() {
            let reader = BufReader::new(File::open(&path)?);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match CellRecord::decode(&line) {
                    Ok(rec) if rec.epoch == ENGINE_EPOCH => {
                        if index.insert(rec.key, rec).is_some() {
                            stats.duplicates += 1;
                        }
                    }
                    Ok(_) => stats.epoch_evicted += 1,
                    Err(_) => stats.corrupt_skipped += 1,
                }
            }
        }
        stats.loaded = index.len();
        Ok(ResultStore {
            path: Some(path),
            inner: Mutex::new(Inner { index, writer: None }),
            load_stats: stats,
        })
    }

    /// What the on-disk load found (all zeros for in-memory stores).
    pub fn load_stats(&self) -> LoadStats {
        self.load_stats
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The record at `key`, if stored.
    pub fn get(&self, key: ScenarioKey) -> Option<CellRecord> {
        self.inner.lock().index.get(&key).cloned()
    }

    pub fn contains(&self, key: ScenarioKey) -> bool {
        self.inner.lock().index.contains_key(&key)
    }

    /// Insert a record: index immediately, append to the log (when disk-
    /// backed) and flush. A re-inserted key overwrites — last write wins in
    /// memory exactly as it does on reload.
    pub fn put(&self, rec: CellRecord) -> std::io::Result<()> {
        let mut inner = self.inner.lock();
        if let Some(path) = &self.path {
            if inner.writer.is_none() {
                inner.writer = Some(OpenOptions::new().create(true).append(true).open(path)?);
            }
            let w = inner.writer.as_mut().expect("writer just ensured");
            w.write_all(rec.encode().as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()?;
        }
        inner.index.insert(rec.key, rec);
        Ok(())
    }

    /// Drop every record matching `pred`; returns how many were evicted.
    /// The disk log still holds the bytes until the next [`ResultStore::compact`],
    /// but reloads go through the index semantics only after compaction —
    /// call it when eviction must persist.
    pub fn invalidate_where(&self, pred: impl Fn(&CellRecord) -> bool) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.index.len();
        inner.index.retain(|_, rec| !pred(rec));
        before - inner.index.len()
    }

    /// Rewrite the log from the live index (temp file + atomic rename),
    /// shedding duplicate, corrupt, wrong-epoch, and invalidated bytes.
    /// Returns the number of live records written. No-op in memory.
    pub fn compact(&self) -> std::io::Result<usize> {
        let mut inner = self.inner.lock();
        let Some(path) = &self.path else {
            return Ok(inner.index.len());
        };
        let mut records: Vec<&CellRecord> = inner.index.values().collect();
        records.sort_by(|a, b| (&a.label, a.ranks).cmp(&(&b.label, b.ranks)));
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut w = std::io::BufWriter::new(File::create(&tmp)?);
            for rec in &records {
                w.write_all(rec.encode().as_bytes())?;
                w.write_all(b"\n")?;
            }
            w.flush()?;
            // Durability before visibility: the rename below must never
            // publish a temp file whose bytes are still in the page cache —
            // a crash after rename but before writeback would replace a
            // good log with a torn one.
            w.get_ref().sync_all()?;
        }
        let written = records.len();
        // Drop the stale append handle before replacing the file it points
        // at — later appends must reopen the compacted log.
        inner.writer = None;
        std::fs::rename(&tmp, path)?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ProfileSummary;

    fn rec(key: u128, label: &str, ranks: usize, stat_openat: usize) -> CellRecord {
        CellRecord {
            key: ScenarioKey(key),
            epoch: ENGINE_EPOCH,
            label: label.to_string(),
            ranks,
            profile: ProfileSummary { stat_openat, misses: 0, complete: true, unresolved: 0 },
            error: None,
            outcome: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("depchaos-serve-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_put_get() {
        let store = ResultStore::in_memory();
        assert!(store.is_empty());
        store.put(rec(1, "a/b", 512, 10)).unwrap();
        assert_eq!(store.get(ScenarioKey(1)).unwrap().profile.stat_openat, 10);
        assert!(!store.contains(ScenarioKey(2)));
        // Last write wins in memory too.
        store.put(rec(1, "a/b", 512, 99)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(ScenarioKey(1)).unwrap().profile.stat_openat, 99);
    }

    #[test]
    fn disk_round_trip_and_reload() {
        let dir = temp_dir("roundtrip");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(rec(7, "x/y", 512, 3)).unwrap();
            store.put(rec(8, "x/y", 1024, 4)).unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.load_stats(), LoadStats { loaded: 2, ..LoadStats::default() });
        assert_eq!(store.get(ScenarioKey(8)).unwrap().ranks, 1024);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_keys_resolve_last_write_wins_on_reload() {
        let dir = temp_dir("dups");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(rec(7, "x/y", 512, 3)).unwrap();
            store.put(rec(7, "x/y", 512, 42)).unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.load_stats().duplicates, 1);
        assert_eq!(store.get(ScenarioKey(7)).unwrap().profile.stat_openat, 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_record_is_skipped_and_counted() {
        let dir = temp_dir("trunc");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(rec(1, "a", 512, 1)).unwrap();
            store.put(rec(2, "b", 512, 2)).unwrap();
        }
        // Tear the tail of the log, as a mid-append crash would.
        let path = dir.join("store.jsonl");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.load_stats().corrupt_skipped, 1);
        assert!(store.contains(ScenarioKey(1)));
        assert!(!store.contains(ScenarioKey(2)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_mismatch_evicts_on_load() {
        let dir = temp_dir("epoch");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(rec(1, "a", 512, 1)).unwrap();
            store.put(CellRecord { epoch: ENGINE_EPOCH + 1, ..rec(2, "b", 512, 2) }).unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.load_stats().epoch_evicted, 1);
        assert!(!store.contains(ScenarioKey(2)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_dead_bytes_and_appends_still_work() {
        let dir = temp_dir("compact");
        let path = dir.join("store.jsonl");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(rec(1, "a", 512, 1)).unwrap();
            store.put(rec(1, "a", 512, 2)).unwrap(); // duplicate
            store.put(rec(3, "c", 512, 3)).unwrap();
            assert_eq!(store.invalidate_where(|r| r.label == "c"), 1);
            assert_eq!(store.compact().unwrap(), 1);
            // Append after compaction reopens the new log.
            store.put(rec(4, "d", 512, 4)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.load_stats().duplicates, 0);
        assert_eq!(store.get(ScenarioKey(1)).unwrap().profile.stat_openat, 2);
        assert!(store.contains(ScenarioKey(4)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_compaction_killed_mid_write_loses_nothing() {
        let dir = temp_dir("killed-compact");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.put(rec(1, "a", 512, 1)).unwrap();
            store.put(rec(2, "b", 512, 2)).unwrap();
        }
        // A process killed mid-compaction leaves a partial temp file next
        // to an intact log: the rename never happened, so the log is whole.
        let tmp = dir.join("store.jsonl.tmp");
        std::fs::write(&tmp, b"{\"key\":\"torn mid-wri").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2, "the intact log is the truth; the temp file is noise");
        assert_eq!(store.load_stats(), LoadStats { loaded: 2, ..LoadStats::default() });
        // The next compaction overwrites the stale temp file and completes.
        assert_eq!(store.compact().unwrap(), 2);
        assert!(!tmp.exists(), "rename consumed the temp file");
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.contains(ScenarioKey(1)));
        assert!(store.contains(ScenarioKey(2)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

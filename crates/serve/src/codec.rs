//! The store's on-disk codec: one JSON object per line, hand-rolled.
//!
//! The workspace deliberately ships no JSON library (the vendored serde is
//! a marker-trait stand-in), so this module follows the `crates/bench`
//! `BENCH_des.json` idiom: the writer emits one fixed schema via
//! `format!`, and the reader is a scanner for exactly that schema which
//! fails loudly per record instead of guessing. Two properties the store
//! leans on:
//!
//! * **Exact round-trips.** Every float (M/G/1 bounds, sampling slack) is
//!   stored as its IEEE-754 bit pattern (`f64::to_bits`, an unsigned
//!   integer), never as decimal text — so a record read back compares
//!   `==` to the value that was written, including infinities, and the
//!   warm-vs-cold `SweepReport` equality guarantee survives the disk.
//! * **Line-local corruption.** A record is one `\n`-terminated line; a
//!   torn write (power loss mid-append) damages at most the final line,
//!   which the loader skips and counts rather than failing the store.
//!
//! [`CellRecord`] is the unit of storage: one `(scenario, rank point)`
//! result — the scenario-level profile summary plus, when the cell
//! simulated, the launch result, replicate statistics, and queueing check.

use depchaos_launch::{LaunchResult, LaunchStats, Mg1Bounds, QueueingCheck};

use crate::key::ScenarioKey;

/// The per-scenario profile summary every record of that scenario carries
/// (duplicating a few integers per rank point buys record independence:
/// any subset of a scenario's records is enough to serve that subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSummary {
    pub stat_openat: usize,
    pub misses: usize,
    pub complete: bool,
    pub unresolved: usize,
}

/// The simulated payload of a cell that has one (profile errors don't).
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    pub result: LaunchResult,
    pub stats: LaunchStats,
    pub queueing: QueueingCheck,
}

/// One stored `(scenario, rank point)` result.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    pub key: ScenarioKey,
    pub epoch: u32,
    /// The scenario label ([`depchaos_launch::ScenarioSpec::label`]) — not
    /// part of the address (the key already hashes every axis), but the
    /// handle predicate-based invalidation and store inspection work on.
    pub label: String,
    pub ranks: usize,
    pub profile: ProfileSummary,
    /// Why the cell has no outcome, when it doesn't (profile/wrap error —
    /// stored so warm replays answer error cells without re-profiling).
    pub error: Option<String>,
    pub outcome: Option<CellOutcome>,
}

/// Escape a string for a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Unescape the reader side of [`esc`]. Returns `None` on malformed
/// escapes — corrupt records must be skipped, not mis-read.
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extract the raw (still-escaped) JSON string following `"key":` — scans
/// for the closing quote respecting backslash escapes.
pub(crate) fn str_field(line: &str, key: &str) -> Option<String> {
    let at = line.find(&format!("\"{key}\":"))?;
    let rest = &line[at + key.len() + 3..];
    let rest = rest.trim_start().strip_prefix('"')?;
    let mut end = None;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    unesc(&rest[..end?])
}

/// Extract the unsigned integer following `"key":`.
pub(crate) fn u64_field(line: &str, key: &str) -> Option<u64> {
    let at = line.find(&format!("\"{key}\":"))?;
    let digits: String =
        line[at + key.len() + 3..].trim_start().chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Extract the boolean following `"key":`.
fn bool_field(line: &str, key: &str) -> Option<bool> {
    let at = line.find(&format!("\"{key}\":"))?;
    let rest = line[at + key.len() + 3..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

impl CellRecord {
    /// Encode as one JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut s = format!(
            "{{\"key\":\"{}\",\"epoch\":{},\"label\":\"{}\",\"ranks\":{},\
             \"stat_openat\":{},\"misses\":{},\"complete\":{},\"unresolved\":{}",
            self.key.hex(),
            self.epoch,
            esc(&self.label),
            self.ranks,
            self.profile.stat_openat,
            self.profile.misses,
            self.profile.complete,
            self.profile.unresolved,
        );
        if let Some(e) = &self.error {
            s.push_str(&format!(",\"error\":\"{}\"", esc(e)));
        }
        if let Some(o) = &self.outcome {
            let (r, st, q, b) = (&o.result, &o.stats, &o.queueing, &o.queueing.bounds);
            s.push_str(&format!(
                ",\"launch_ns\":{},\"nodes\":{},\"server_ops\":{},\"local_ops\":{},\
                 \"peak_queue\":{},\"retries\":{},\"timeouts\":{},\"max_backoff_ns\":{},\
                 \"slowed_nodes\":{},\"reps\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\
                 \"p99_ns\":{},\"q_ranks\":{},\"q_cold_nodes\":{},\"q_ops_per_node\":{},\
                 \"q_servers\":{},\
                 \"q_util_bits\":{},\"q_wait_bits\":{},\"q_lower_ns\":{},\"q_upper_ns\":{},\
                 \"q_cv2_bits\":{},\"q_sd_bits\":{},\"q_applicable\":{},\"q_observed_ns\":{},\
                 \"q_slack_bits\":{},\"q_within\":{}",
                r.time_to_launch_ns,
                r.nodes,
                r.server_ops,
                r.local_ops,
                r.peak_queue_depth,
                r.retries_issued,
                r.timeouts_hit,
                r.max_backoff_ns,
                r.slowed_nodes,
                st.replicates,
                st.mean_ns,
                st.p50_ns,
                st.p95_ns,
                st.p99_ns,
                b.ranks,
                b.cold_nodes,
                b.server_ops_per_node,
                b.servers,
                b.utilisation.to_bits(),
                b.mean_wait_ns.to_bits(),
                b.lower_ns,
                b.upper_ns,
                b.factor_cv2.to_bits(),
                b.work_sd_ns.to_bits(),
                b.applicable,
                q.observed_mean_ns,
                q.slack_ns.to_bits(),
                q.within,
            ));
        }
        s.push('}');
        s
    }

    /// Decode one line. Errors name the first missing/malformed field; the
    /// store counts them as corrupt records and moves on.
    pub fn decode(line: &str) -> Result<CellRecord, String> {
        let line = line.trim_end();
        if !line.ends_with('}') {
            return Err("truncated record (no closing brace)".to_string());
        }
        let need_u64 =
            |key: &str| u64_field(line, key).ok_or_else(|| format!("missing field {key:?}"));
        let need_bool =
            |key: &str| bool_field(line, key).ok_or_else(|| format!("missing field {key:?}"));
        let key = str_field(line, "key")
            .and_then(|h| ScenarioKey::from_hex(&h))
            .ok_or("missing or malformed \"key\"")?;
        let epoch = need_u64("epoch")? as u32;
        let label = str_field(line, "label").ok_or("missing field \"label\"")?;
        let ranks = need_u64("ranks")? as usize;
        let profile = ProfileSummary {
            stat_openat: need_u64("stat_openat")? as usize,
            misses: need_u64("misses")? as usize,
            complete: need_bool("complete")?,
            unresolved: need_u64("unresolved")? as usize,
        };
        let error = str_field(line, "error");
        let outcome = if line.contains("\"launch_ns\":") {
            Some(CellOutcome {
                result: LaunchResult {
                    time_to_launch_ns: need_u64("launch_ns")?,
                    nodes: need_u64("nodes")? as usize,
                    server_ops: need_u64("server_ops")?,
                    local_ops: need_u64("local_ops")?,
                    peak_queue_depth: need_u64("peak_queue")? as usize,
                    retries_issued: need_u64("retries")?,
                    timeouts_hit: need_u64("timeouts")?,
                    max_backoff_ns: need_u64("max_backoff_ns")?,
                    slowed_nodes: need_u64("slowed_nodes")? as usize,
                },
                stats: LaunchStats {
                    replicates: need_u64("reps")? as usize,
                    mean_ns: need_u64("mean_ns")?,
                    p50_ns: need_u64("p50_ns")?,
                    p95_ns: need_u64("p95_ns")?,
                    p99_ns: need_u64("p99_ns")?,
                },
                queueing: QueueingCheck {
                    bounds: Mg1Bounds {
                        ranks: need_u64("q_ranks")? as usize,
                        cold_nodes: need_u64("q_cold_nodes")? as usize,
                        server_ops_per_node: need_u64("q_ops_per_node")?,
                        servers: need_u64("q_servers")? as usize,
                        utilisation: f64::from_bits(need_u64("q_util_bits")?),
                        mean_wait_ns: f64::from_bits(need_u64("q_wait_bits")?),
                        lower_ns: need_u64("q_lower_ns")?,
                        upper_ns: need_u64("q_upper_ns")?,
                        factor_cv2: f64::from_bits(need_u64("q_cv2_bits")?),
                        work_sd_ns: f64::from_bits(need_u64("q_sd_bits")?),
                        applicable: need_bool("q_applicable")?,
                    },
                    observed_mean_ns: need_u64("q_observed_ns")?,
                    slack_ns: f64::from_bits(need_u64("q_slack_bits")?),
                    within: need_bool("q_within")?,
                },
            })
        } else {
            None
        };
        Ok(CellRecord { key, epoch, label, ranks, profile, error, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ENGINE_EPOCH;

    fn sample_outcome() -> CellOutcome {
        CellOutcome {
            result: LaunchResult {
                time_to_launch_ns: 25_285_000_000,
                nodes: 4,
                server_ops: 500,
                local_ops: 1200,
                peak_queue_depth: 3,
                retries_issued: 42,
                timeouts_hit: 42,
                max_backoff_ns: 4_000_000_000,
                slowed_nodes: 2,
            },
            stats: LaunchStats {
                replicates: 11,
                mean_ns: 25_285_000_001,
                p50_ns: 25_285_000_000,
                p95_ns: 25_290_000_000,
                p99_ns: 25_299_999_999,
            },
            queueing: QueueingCheck {
                bounds: Mg1Bounds {
                    ranks: 512,
                    cold_nodes: 4,
                    server_ops_per_node: 500,
                    servers: 4,
                    utilisation: 0.37,
                    mean_wait_ns: f64::INFINITY,
                    lower_ns: 25_000_000_000,
                    upper_ns: 26_000_000_000,
                    factor_cv2: 0.2840254166877415,
                    work_sd_ns: 1.5e7,
                    applicable: true,
                },
                observed_mean_ns: 25_285_000_001,
                slack_ns: 2.7e7,
                within: true,
            },
        }
    }

    fn sample_record() -> CellRecord {
        CellRecord {
            key: ScenarioKey(0x0123_4567_89ab_cdef_fedc_ba98_7654_3210),
            epoch: ENGINE_EPOCH,
            label: "pynamic-200/glibc/nfs/plain/cold/lognormal-500".to_string(),
            ranks: 512,
            profile: ProfileSummary {
                stat_openat: 4242,
                misses: 17,
                complete: true,
                unresolved: 0,
            },
            error: None,
            outcome: Some(sample_outcome()),
        }
    }

    #[test]
    fn round_trip_is_exact_including_floats() {
        let rec = sample_record();
        let line = rec.encode();
        assert!(!line.contains('\n'), "one record, one line");
        let back = CellRecord::decode(&line).unwrap();
        assert_eq!(back, rec);
        // The infinity survived (decimal formatting would have lost it).
        assert!(back.outcome.unwrap().queueing.bounds.mean_wait_ns.is_infinite());
    }

    #[test]
    fn error_records_round_trip_with_escapes() {
        let rec = CellRecord {
            error: Some("wrap failed: \"quoted\"\\path\n\ttail \u{1}".to_string()),
            outcome: None,
            ..sample_record()
        };
        let line = rec.encode();
        let back = CellRecord::decode(&line).unwrap();
        assert_eq!(back, rec);
        assert!(back.outcome.is_none());
    }

    #[test]
    fn truncation_is_detected_not_misread() {
        let line = sample_record().encode();
        for cut in [1usize, 7, line.len() / 2, line.len() - 1] {
            let torn = &line[..line.len() - cut];
            assert!(CellRecord::decode(torn).is_err(), "cut {cut} must not parse");
        }
    }

    #[test]
    fn missing_fields_name_themselves() {
        let line = sample_record().encode();
        let broken = line.replace("\"p95_ns\"", "\"p95_n*\"");
        let err = CellRecord::decode(&broken).unwrap_err();
        assert!(err.contains("p95_ns"), "{err}");
    }
}

//! Property: two store cells share a [`ScenarioKey`] **iff** they share a
//! semantic identity — the content-addressing contract the whole serve
//! layer rests on. Equality of identities must give equal keys (or warm
//! hits would randomly miss), and distinct identities must give distinct
//! keys (or the store would serve the wrong cell's result).

use depchaos_launch::{
    AdaptiveControl, CachePolicy, FaultModel, LaunchConfig, ScenarioSpec, ServerTopology,
    ServiceDistribution, WrapState,
};
use depchaos_serve::{CellIdentity, ScenarioKey};
use depchaos_vfs::StorageModel;
use proptest::prelude::*;

/// An owned cell identity, derived deterministically from one u64 so the
/// strategy stays a plain integer range.
#[derive(Debug, Clone)]
struct Ident {
    spec: ScenarioSpec,
    ranks: usize,
    replicates: usize,
    adaptive: Option<AdaptiveControl>,
    base: LaunchConfig,
}

/// The replicate-control half of a cell's semantic identity: which plan
/// the sweep will actually execute for this cell.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Plan {
    Fixed(usize),
    Adaptive(AdaptiveControl),
}

impl Ident {
    fn from_seed(seed: u64) -> Ident {
        // Small per-axis spaces on purpose: coincidentally equal draws
        // exercise the "equal identities ⇒ equal keys" direction too.
        let mut s = seed;
        let mut pick = |n: u64| {
            s = s.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234_5678);
            let z = (s ^ (s >> 31)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            (z ^ (z >> 29)) % n
        };
        let spec = ScenarioSpec {
            workload: ["pynamic-20", "axom-7", "emacs"][pick(3) as usize].to_string(),
            backend: ["glibc", "musl", "hash-store"][pick(3) as usize].to_string(),
            storage: [StorageModel::Nfs, StorageModel::Local][pick(2) as usize],
            wrap: [WrapState::Plain, WrapState::Wrapped][pick(2) as usize],
            cache: [CachePolicy::Cold, CachePolicy::Broadcast][pick(2) as usize],
            dist: [
                ServiceDistribution::Deterministic,
                ServiceDistribution::UniformJitter { spread_milli: 250 },
                ServiceDistribution::LogNormal { sigma_milli: 500 },
                ServiceDistribution::LogNormal { sigma_milli: 501 },
            ][pick(4) as usize],
            fault: [
                FaultModel::None,
                FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
                FaultModel::RpcLoss {
                    loss_milli: 100,
                    timeout_ns: 1_000_000_000,
                    backoff_base_ns: 250_000_000,
                    max_retries: 5,
                },
                FaultModel::Stragglers { frac_milli: 100, slow_milli: 4000 },
            ][pick(4) as usize],
            topology: [
                ServerTopology::single(),
                ServerTopology::hash(2),
                ServerTopology::hash(8),
                ServerTopology::least_loaded(2),
            ][pick(4) as usize],
        };
        let defaults = LaunchConfig::default();
        let base = LaunchConfig {
            seed: 1 + pick(2),
            rtt_ns: defaults.rtt_ns + pick(2),
            meta_service_ns: defaults.meta_service_ns + pick(2),
            ..defaults
        };
        Ident {
            spec,
            ranks: [256, 512][pick(2) as usize],
            replicates: [1, 2, 11][pick(3) as usize],
            adaptive: [
                None,
                Some(AdaptiveControl { target_rel_milli: 50, min_k: 4, max_k: 11, batch: 4 }),
                Some(AdaptiveControl { target_rel_milli: 100, min_k: 3, max_k: 25, batch: 2 }),
            ][pick(3) as usize],
            base,
        }
    }

    fn key(&self) -> ScenarioKey {
        CellIdentity {
            spec: &self.spec,
            ranks: self.ranks,
            replicates: self.replicates,
            adaptive: self.adaptive,
            base: &self.base,
        }
        .key()
    }

    /// The semantic identity the key must encode exactly: the spec, the
    /// rank point, the replicate plan the sweep will actually execute
    /// (deterministic draw-free cells run once regardless of the request
    /// — adaptive or fixed — while draw-taking cells under adaptive
    /// control are governed by the stopping-rule parameters, not the
    /// requested count), and the seed + calibration fields of the base
    /// config.
    #[allow(clippy::type_complexity)]
    fn semantic(&self) -> (ScenarioSpec, usize, Plan, u64, usize, u64, u64, u64, u64, u64) {
        let takes_draws = !self.spec.dist.is_deterministic() || self.spec.fault.takes_draws();
        let plan = match self.adaptive {
            Some(ctl) if takes_draws => Plan::Adaptive(ctl),
            _ if takes_draws => Plan::Fixed(self.replicates.max(1)),
            _ => Plan::Fixed(1),
        };
        (
            self.spec.clone(),
            self.ranks,
            plan,
            self.base.seed,
            self.base.ranks_per_node,
            self.base.rtt_ns,
            self.base.meta_service_ns,
            self.base.warm_ns,
            self.base.base_overhead_ns,
            self.base.per_rank_overhead_ns,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// key(a) == key(b)  ⟺  semantic(a) == semantic(b).
    #[test]
    fn key_equality_iff_identity_equality(a in 0u64..1 << 48, b in 0u64..1 << 48, copy in any::<bool>()) {
        let ia = Ident::from_seed(a);
        // Half the cases compare an identity against its own copy, so the
        // "equal ⇒ equal" direction is exercised every run, not only on
        // coincidental draws.
        let ib = if copy { ia.clone() } else { Ident::from_seed(b) };
        prop_assert_eq!(ia.semantic() == ib.semantic(), ia.key() == ib.key(),
            "a={:?} b={:?}", ia, ib);
    }

    /// The hex spelling on disk is lossless for every key.
    #[test]
    fn key_hex_round_trips(a in 0u64..1 << 48) {
        let k = Ident::from_seed(a).key();
        prop_assert_eq!(ScenarioKey::from_hex(&k.hex()), Some(k));
    }
}

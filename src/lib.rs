//! # depchaos — a Rust reproduction of *Mapping Out the HPC Dependency Chaos* (SC22)
//!
//! This facade crate re-exports the whole workspace. The pieces:
//!
//! * [`vfs`] — simulated filesystem with syscall accounting and NFS/local
//!   latency models;
//! * [`elf`] — the dynamic-section view of ELF objects plus patchelf-style
//!   editing;
//! * [`graph`] — dependency-graph analytics (closures, constraint taxonomy,
//!   reuse histograms, DOT);
//! * [`loader`] — one breadth-first loader engine
//!   ([`loader::engine`]) with pluggable search and dedup policies, behind
//!   the object-safe [`loader::Loader`] trait: glibc and musl models, a
//!   Zircon-style loader service, the §III-C future loader, plus
//!   libtree-style static analysis;
//! * [`store`] — the §II deployment models: FHS, bundles, the Nix/Spack
//!   store, modules, dependency views;
//! * [`workloads`] — seeded generators for every evaluation artifact
//!   (Debian, Nix Ruby, emacs, Pynamic, ROCm, OpenMP, samba, Fig 3);
//! * [`shrinkwrap`] — the paper's contribution (crate `depchaos-core`),
//!   backend-generic: [`shrinkwrap::Strategy`] freezes whatever closure any
//!   [`loader::Loader`] resolves;
//! * [`launch`] — the Fig 6 parallel-launch discrete-event simulation,
//!   generalised into a scenario-matrix sweep engine
//!   ([`launch::ExperimentMatrix`]): workload × backend × storage × wrap
//!   state × cache policy × service distribution (deterministic, jittered,
//!   or heavy-tailed metadata server — seeded, replicated, reported as
//!   p50/p99 bands), with memoized profiling and per-backend renderers;
//! * [`serve`] — the persistent, incremental what-if service over that
//!   matrix: a content-addressed result store (128-bit scenario keys,
//!   JSONL log, corruption-tolerant load), a sharded executor that
//!   simulates only store misses yet aggregates reports bit-identical to
//!   cold runs, and a batched JSONL front door (`depchaos-serve`).
//!
//! ## Quickstart
//!
//! ```
//! use depchaos::prelude::*;
//!
//! // A world: one app in a Spack-like store.
//! let fs = Vfs::local();
//! let mut repo = Repo::new();
//! repo.add(PackageDef::new("zlib", "1.2").lib(LibDef::new("libz.so.1")));
//! repo.add(PackageDef::new("tool", "1.0").dep("zlib")
//!     .bin(BinDef::new("tool").needs("libz.so.1")));
//! let mut store = StoreInstaller::spack_like();
//! let tool = store.install(&fs, &repo, "tool").unwrap();
//! let bin = format!("{}/tool", tool.bin_dir);
//!
//! // Every loader model is a `Loader`; pick backends at runtime.
//! let glibc = GlibcLoader::new(&fs);
//! let musl = MuslLoader::new(&fs);
//! for loader in [&glibc as &dyn Loader, &musl] {
//!     let r = loader.load(&bin).unwrap();
//!     assert!(r.success(), "{} should load the store layout", loader.name());
//! }
//!
//! // Shrinkwrap through a backend (glibc is the default), then reload:
//! // fewer syscalls, and the musl incompatibility becomes observable.
//! let before = glibc.load(&bin).unwrap();
//! wrap(&fs, &bin, &ShrinkwrapOptions::new().backend(LoaderBackend::glibc())).unwrap();
//! let after = glibc.load(&bin).unwrap();
//! assert!(after.success());
//! assert!(after.syscalls.misses <= before.syscalls.misses);
//! assert!(glibc.resolves_by_soname() && !musl.resolves_by_soname());
//! ```

pub use depchaos_core as shrinkwrap;
pub use depchaos_elf as elf;
pub use depchaos_graph as graph;
pub use depchaos_launch as launch;
pub use depchaos_loader as loader;
pub use depchaos_serve as serve;
pub use depchaos_store as store;
pub use depchaos_vfs as vfs;
pub use depchaos_workloads as workloads;

/// The names most programs want in scope.
pub mod prelude {
    pub use depchaos_core::{
        audit, wrap, LoaderBackend, LoaderFactory, OnMissing, ShrinkwrapOptions, Strategy,
    };
    pub use depchaos_elf::{ElfEditor, ElfObject, Machine, Symbol};
    pub use depchaos_graph::{ConstraintTally, DepGraph, VersionConstraint};
    pub use depchaos_launch::{
        profile_load, profile_load_checked, profile_load_with, render_fig6, simulate_launch,
        sweep_ranks, CachePolicy, ExperimentMatrix, LaunchConfig, MatrixBackend, ProfileCache,
        SweepReport, WrapState,
    };
    pub use depchaos_loader::{
        analyze_tree, Environment, FutureLoader, GlibcLoader, HashStoreService, LdCache, Loader,
        MuslLoader, Provenance, Resolution, ServiceLoader,
    };
    pub use depchaos_serve::{
        run_matrix_incremental, serve_batch, CellIdentity, ExecStats, ResultStore, ScenarioKey,
        WhatIfRequest,
    };
    pub use depchaos_store::{
        build_view, gc, BinDef, BundleInstaller, FhsInstaller, LibDef, Module, ModuleSystem,
        PackageDef, Profile, Repo, StoreInstaller,
    };
    pub use depchaos_vfs::{Backend, StorageModel, Vfs};
    pub use depchaos_workloads::{InstalledWorkload, Workload};
}

//! §II-D: "A NixOS system cannot natively run a dynamic executable built on
//! any other distribution even if the system has every single dependency
//! used by that executable" — and the nix-ld style of workaround.

use depchaos::prelude::*;
use depchaos_elf::io::install;
use depchaos_loader::LoadError;

/// A NixOS-like world: everything under /nix/store, including the loader
/// itself; nothing at the FHS's well-known paths.
fn nixos_world() -> Vfs {
    let fs = Vfs::local();
    install(
        &fs,
        "/nix/store/abc-glibc-2.37/lib/ld-linux-x86-64.so.2",
        &ElfObject::dso("ld-linux-x86-64.so.2").build(),
    )
    .unwrap();
    install(&fs, "/nix/store/abc-glibc-2.37/lib/libc.so.6", &ElfObject::dso("libc.so.6").build())
        .unwrap();
    fs
}

/// A binary built on a normal distro: FHS interpreter path baked in.
fn foreign_binary() -> ElfObject {
    ElfObject::exe("foreign-app").interp("/lib64/ld-linux-x86-64.so.2").needs("libc.so.6").build()
}

#[test]
fn foreign_binary_fails_despite_all_deps_present() {
    let fs = nixos_world();
    install(&fs, "/home/user/foreign-app", &foreign_binary()).unwrap();
    // Every dependency exists in the store — but the interpreter path
    // doesn't, so execve-time resolution dies with the misleading ENOENT.
    let err =
        GlibcLoader::new(&fs).with_strict_interp(true).load("/home/user/foreign-app").unwrap_err();
    assert!(err.to_string().contains("no such file or directory"));
    match err {
        LoadError::InterpreterNotFound { interp, .. } => {
            assert_eq!(interp, "/lib64/ld-linux-x86-64.so.2");
        }
        other => panic!("expected InterpreterNotFound, got {other:?}"),
    }
}

#[test]
fn nix_ld_style_shim_fixes_it() {
    // nix-ld installs a shim at the FHS loader path; with it in place (plus
    // an env pointing at store libs) the foreign binary runs.
    let fs = nixos_world();
    install(&fs, "/home/user/foreign-app", &foreign_binary()).unwrap();
    fs.mkdir_p("/lib64").unwrap();
    fs.symlink("/lib64/ld-linux-x86-64.so.2", "/nix/store/abc-glibc-2.37/lib/ld-linux-x86-64.so.2")
        .unwrap();
    let env = Environment::bare().with_ld_library_path("/nix/store/abc-glibc-2.37/lib");
    let r = GlibcLoader::new(&fs)
        .with_env(env)
        .with_strict_interp(true)
        .load("/home/user/foreign-app")
        .unwrap();
    assert!(r.success(), "{:?}", r.failures);
    assert!(r.find("libc.so.6").unwrap().path.starts_with("/nix/store"));
}

#[test]
fn patchelf_style_fix_also_works() {
    // The other standard remedy: rewrite the interpreter (what nixpkgs'
    // autoPatchelfHook does to vendored binaries).
    let fs = nixos_world();
    install(&fs, "/home/user/foreign-app", &foreign_binary()).unwrap();
    ElfEditor::open(&fs, "/home/user/foreign-app")
        .unwrap()
        .set_interp("/nix/store/abc-glibc-2.37/lib/ld-linux-x86-64.so.2")
        .unwrap();
    let env = Environment::bare().with_ld_library_path("/nix/store/abc-glibc-2.37/lib");
    let r = GlibcLoader::new(&fs)
        .with_env(env)
        .with_strict_interp(true)
        .load("/home/user/foreign-app")
        .unwrap();
    assert!(r.success());
}

#[test]
fn two_glibc_generations_coexist_in_the_store() {
    // The payoff the paper grants the store model: "a Nix system can use
    // two different loaders with two C libraries side-by-side".
    let fs = nixos_world();
    install(
        &fs,
        "/nix/store/xyz-glibc-2.38/lib/ld-linux-x86-64.so.2",
        &ElfObject::dso("ld-linux-x86-64.so.2").build(),
    )
    .unwrap();
    install(&fs, "/nix/store/xyz-glibc-2.38/lib/libc.so.6", &ElfObject::dso("libc.so.6").build())
        .unwrap();
    for (gen, store_pfx) in
        [("old", "/nix/store/abc-glibc-2.37"), ("new", "/nix/store/xyz-glibc-2.38")]
    {
        let exe = ElfObject::exe(format!("app-{gen}"))
            .interp(format!("{store_pfx}/lib/ld-linux-x86-64.so.2"))
            .needs("libc.so.6")
            .rpath(format!("{store_pfx}/lib"))
            .build();
        let path = format!("/nix/store/{gen}-app/bin/app");
        install(&fs, &path, &exe).unwrap();
        let r = GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .with_strict_interp(true)
            .load(&path)
            .unwrap();
        assert!(r.success());
        assert!(r.find("libc.so.6").unwrap().path.starts_with(store_pfx));
    }
}

//! Table II: emacs stat/openat syscalls, before and after Shrinkwrap.
//!
//! Paper: 1823 calls unwrapped, 104 wrapped — a 36× time reduction on NFS.

use depchaos::prelude::*;
use depchaos_workloads::emacs;

fn load_calls(fs: &Vfs) -> (u64, u64, bool) {
    let r = GlibcLoader::new(fs).with_env(Environment::bare()).load(emacs::EXE_PATH).unwrap();
    (r.stat_openat(), r.time_ns, r.success())
}

#[test]
fn unwrapped_calls_match_paper_band() {
    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    let (calls, _, ok) = load_calls(&fs);
    assert!(ok);
    // Paper: 1823 of a ~3600 worst case. Generator calibrated to the band.
    assert!((1500..2200).contains(&calls), "got {calls}, paper says 1823");
}

#[test]
fn wrapped_calls_are_deps_plus_one() {
    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    depchaos_core::wrap(&fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(Environment::bare()))
        .unwrap();
    let (calls, _, ok) = load_calls(&fs);
    assert!(ok);
    assert_eq!(calls, (emacs::N_DEPS + 1) as u64, "paper: 104 = 103 deps + the exe");
}

#[test]
fn wrapped_is_an_order_of_magnitude_cheaper_in_time() {
    // On NFS with negative caching off — the paper's environment — the
    // simulated time gap is what Table II's 0.034s → 0.00095s shows.
    let fs = Vfs::nfs();
    emacs::install(&fs).unwrap();
    fs.drop_caches();
    let (before_calls, before_ns, _) = load_calls(&fs);
    depchaos_core::wrap(&fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(Environment::bare()))
        .unwrap();
    fs.drop_caches();
    let (after_calls, after_ns, _) = load_calls(&fs);
    let call_ratio = before_calls as f64 / after_calls as f64;
    let time_ratio = before_ns as f64 / after_ns as f64;
    assert!(call_ratio > 10.0, "paper: 1823/104 ≈ 17.5x, got {call_ratio:.1}x");
    assert!(time_ratio > 10.0, "paper: ~36x, got {time_ratio:.1}x");
}

#[test]
fn misses_eliminated_entirely() {
    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    let r1 = GlibcLoader::new(&fs).with_env(Environment::bare()).load(emacs::EXE_PATH).unwrap();
    assert!(r1.syscalls.misses > 1000, "unwrapped search wastes >1k probes");
    depchaos_core::wrap(&fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(Environment::bare()))
        .unwrap();
    let r2 = GlibcLoader::new(&fs).with_env(Environment::bare()).load(emacs::EXE_PATH).unwrap();
    assert_eq!(r2.syscalls.misses, 0, "every open is a direct hit after wrapping");
}

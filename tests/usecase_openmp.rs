//! §V-B.2: libomp/libompstubs — the duplicate-symbol case Shrinkwrap
//! handles and link-line lifting cannot.

use depchaos::prelude::*;
use depchaos_core::WrapWarning;
use depchaos_elf::check_link;
use depchaos_workloads::openmp;

/// The needy-executables workaround (§III-D2) requires re-linking with the
/// whole closure on the link line — which fails here.
#[test]
fn link_line_lifting_fails() {
    let fs = Vfs::local();
    openmp::install_scenario(&fs, false).unwrap();
    let r = GlibcLoader::new(&fs).load(openmp::APP).unwrap();
    let objs: Vec<(String, Vec<depchaos_elf::Symbol>)> =
        r.objects.iter().skip(1).map(|o| (o.path.clone(), o.object.symbols.clone())).collect();
    let err = check_link(objs.iter().map(|(p, s)| (p.as_str(), s.as_slice()))).unwrap_err();
    assert!(err.symbol.starts_with("omp_"));
}

/// Shrinkwrap does not touch the link line, so it wraps cleanly, warns
/// about the shadowing, and preserves the user's load order.
#[test]
fn shrinkwrap_succeeds_and_preserves_order() {
    for stubs_first in [false, true] {
        let fs = Vfs::local();
        openmp::install_scenario(&fs, stubs_first).unwrap();
        let rep = depchaos_core::wrap(
            &fs,
            openmp::APP,
            &ShrinkwrapOptions::new().env(Environment::default()),
        )
        .unwrap();
        assert!(
            rep.warnings.iter().any(|w| matches!(w, WrapWarning::DuplicateStrongSymbol { .. })),
            "shadowing surfaced as a warning"
        );
        let r = GlibcLoader::new(&fs).load(openmp::APP).unwrap();
        assert!(r.success());
        let winner = openmp::winning_runtime(&r).unwrap();
        if stubs_first {
            assert!(winner.ends_with("libompstubs.so"), "user's (buggy) order preserved");
        } else {
            assert!(winner.ends_with("libomp.so"), "user's (working) order preserved");
        }
    }
}

/// After wrapping, the winner no longer depends on the runtime environment:
/// the load order is frozen in the binary.
#[test]
fn wrapped_order_is_environment_independent() {
    let fs = Vfs::local();
    openmp::install_scenario(&fs, false).unwrap();
    depchaos_core::wrap(&fs, openmp::APP, &ShrinkwrapOptions::new().env(Environment::default()))
        .unwrap();
    // A hostile LD_LIBRARY_PATH pointing somewhere with a different
    // libomp.so cannot perturb the frozen order.
    let fs_obj = depchaos_elf::io::peek_object(&fs, openmp::APP).unwrap();
    assert!(fs_obj.needed.iter().all(|n| n.contains('/')));
    let env = Environment::default().with_ld_library_path("/somewhere/else");
    let r = GlibcLoader::new(&fs).with_env(env).load(openmp::APP).unwrap();
    assert!(openmp::winning_runtime(&r).unwrap().ends_with("libomp.so"));
}

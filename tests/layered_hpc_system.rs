//! §II-E: "any given HPC system is usually comprised of layered instances
//! of the FHS model and some form of the store model" — the composition
//! that produces the chaos the paper maps.
//!
//! Four layers, like Lassen:
//!   1. OS base (RHEL/TOSS): FHS in /usr/lib, found via default paths;
//!   2. site development environment (TCE): /usr/tce packages exposed by
//!      modules that set LD_LIBRARY_PATH;
//!   3. a group-managed store (Spack-like, RUNPATH);
//!   4. the user's application linking across all three.

use depchaos::prelude::*;
use depchaos_elf::io::install;

struct System {
    fs: Vfs,
    modules: ModuleSystem,
}

fn build_system() -> System {
    let fs = Vfs::local();

    // Layer 1: OS base.
    let mut fhs = FhsInstaller::new();
    fhs.install(
        &fs,
        &PackageDef::new("glibc", "2.28")
            .lib(LibDef::new("libc.so.6"))
            .lib(LibDef::new("libm.so.6")),
    )
    .unwrap();

    // Layer 2: TCE compiler runtimes under /usr/tce, module-exposed.
    for v in ["8.3.1", "12.1.1"] {
        let dir = format!("/usr/tce/gcc-{v}/lib64");
        install(
            &fs,
            &format!("{dir}/libstdc++.so.6"),
            &ElfObject::dso("libstdc++.so.6")
                .defines(Symbol::strong(format!("abi_{}", v.replace('.', "_"))))
                .needs("libc.so.6")
                .build(),
        )
        .unwrap();
    }
    let mut modules = ModuleSystem::new();
    modules.provide(Module::new("gcc/8.3.1").ld_library_path("/usr/tce/gcc-8.3.1/lib64"));
    modules.provide(Module::new("gcc/12.1.1").ld_library_path("/usr/tce/gcc-12.1.1/lib64"));

    // Layer 3: the group's Spack-like store.
    let mut repo = Repo::new();
    repo.add(
        PackageDef::new("hdf5", "1.12")
            .lib(LibDef::new("libhdf5.so.200").needs("libstdc++.so.6").needs("libc.so.6")),
    );
    let mut store = StoreInstaller::spack_like();
    store.install(&fs, &repo, "hdf5").unwrap();
    let hdf5_lib = store.get("hdf5").unwrap().lib_dir.clone();

    // Layer 4: the user's application, hand-linked against all layers.
    // Compiled with gcc/12: it must see the 12.x libstdc++ at runtime, but
    // the user relies on RUNPATH for hdf5 and the *module* for libstdc++ —
    // the unplanned composition §II-E describes.
    install(
        &fs,
        "/home/user/bin/sim",
        &ElfObject::exe("sim")
            .needs("libhdf5.so.200")
            .needs("libstdc++.so.6")
            .needs("libm.so.6")
            .runpath(hdf5_lib)
            .imports("abi_12_1_1")
            .build(),
    )
    .unwrap();

    System { fs, modules }
}

fn stdcxx_abi(r: &depchaos_loader::LoadResult) -> String {
    let o = r.find("libstdc++.so.6").unwrap();
    o.object.symbols.first().unwrap().name.clone()
}

#[test]
fn correct_module_composes_correctly() {
    let mut sys = build_system();
    sys.modules.load("gcc/12.1.1").unwrap();
    let env = sys.modules.environment(Environment::default());
    let r = GlibcLoader::new(&sys.fs).with_env(env).load("/home/user/bin/sim").unwrap();
    assert!(r.success(), "{:?}", r.failures);
    assert_eq!(stdcxx_abi(&r), "abi_12_1_1");
    // Each layer supplied its piece:
    assert!(r.find("libm.so.6").unwrap().path.starts_with("/usr/lib"));
    assert!(r.find("libhdf5.so.200").unwrap().path.starts_with("/store"));
    assert!(r.find("libstdc++.so.6").unwrap().path.starts_with("/usr/tce/gcc-12.1.1"));
}

#[test]
fn forgotten_module_silently_degrades() {
    // Without any module the app still *runs* — the loader falls back to
    // default paths for libstdc++... which doesn't exist there, so the load
    // fails. With the WRONG module it runs with the wrong ABI: the worst
    // outcome, because nothing errors.
    let mut sys = build_system();
    let env = sys.modules.environment(Environment::default());
    let r = GlibcLoader::new(&sys.fs).with_env(env).load("/home/user/bin/sim").unwrap();
    assert!(!r.success(), "no module, no libstdc++");

    sys.modules.load("gcc/8.3.1").unwrap();
    let env = sys.modules.environment(Environment::default());
    let r = GlibcLoader::new(&sys.fs).with_env(env).load("/home/user/bin/sim").unwrap();
    assert!(r.success(), "loads fine...");
    assert_eq!(stdcxx_abi(&r), "abi_8_3_1", "...with the wrong C++ runtime");
}

#[test]
fn shrinkwrap_pins_the_whole_composition() {
    let mut sys = build_system();
    sys.modules.load("gcc/12.1.1").unwrap();
    let good_env = sys.modules.environment(Environment::default());
    depchaos_core::wrap(&sys.fs, "/home/user/bin/sim", &ShrinkwrapOptions::new().env(good_env))
        .unwrap();

    // Now run with no module / the wrong module: identical, correct load.
    for load_wrong in [false, true] {
        let mut ms = build_system().modules; // fresh module state
        if load_wrong {
            ms.load("gcc/8.3.1").unwrap();
        }
        let env = ms.environment(Environment::default());
        let r = GlibcLoader::new(&sys.fs).with_env(env).load("/home/user/bin/sim").unwrap();
        assert!(r.success());
        assert_eq!(stdcxx_abi(&r), "abi_12_1_1", "frozen to the build-time runtime");
    }
}

#[test]
fn audit_reports_the_layering() {
    let mut sys = build_system();
    sys.modules.load("gcc/12.1.1").unwrap();
    let env = sys.modules.environment(Environment::default());
    let rep = depchaos_core::wrap(
        &sys.fs,
        "/home/user/bin/sim",
        &ShrinkwrapOptions::new().env(env.clone()),
    )
    .unwrap();
    // The frozen list spans all three provider layers — the "mapping out"
    // the paper's title promises.
    let layers: Vec<&str> = rep
        .new_needed
        .iter()
        .map(|p| {
            if p.starts_with("/usr/tce") {
                "tce"
            } else if p.starts_with("/store") {
                "store"
            } else {
                "os"
            }
        })
        .collect();
    assert!(layers.contains(&"os"));
    assert!(layers.contains(&"tce"));
    assert!(layers.contains(&"store"));
    let audit = depchaos_core::audit(&sys.fs, "/home/user/bin/sim", &env).unwrap();
    assert!(audit.fully_frozen());
}

//! The M/G/1 validation layer, cross-crate: queueing-theory bounds must
//! hold for the DES across random streams, every service distribution, and
//! arbitrary seeds — and the analytic all-cold fast path must agree with
//! the heap at the 4Mi-rank scale the sweeps actually run.

use std::time::Instant;

use depchaos::launch::{
    analytic_all_cold, mg1_bounds, reference::simulate_launch_reference, simulate_classified,
    sweep_ranks_replicated, validate_against_mg1, ClassifiedStream, ExperimentMatrix, LaunchConfig,
    MatrixBackend, ProfileCache, ServiceDistribution, WrapState,
};
use depchaos::vfs::{Op, Outcome, StorageModel, StraceLog, Syscall};
use depchaos::workloads::{Axom, Pynamic, Rocm};
use proptest::prelude::*;

/// Build a stream from `(kind, cost)` pairs, as in `des_equivalence.rs`.
fn stream_of(spec: &[(u8, u64)]) -> StraceLog {
    let mut log = StraceLog::new();
    for (i, &(kind, cost_ns)) in spec.iter().enumerate() {
        let (op, outcome) = match kind % 4 {
            0 => (Op::Stat, Outcome::Ok),
            1 => (Op::Openat, Outcome::Enoent),
            2 => (Op::Read, Outcome::Ok),
            _ => (Op::Readlink, Outcome::Ok),
        };
        log.push(Syscall::new(op, &format!("/p/{i}"), outcome, cost_ns));
    }
    log
}

fn cold_stream(n: usize) -> StraceLog {
    let mut log = StraceLog::new();
    for i in 0..n {
        log.push(Syscall::new(Op::Openat, &format!("/lib/l{i}.so"), Outcome::Enoent, 200_000));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance property: across all three distributions, random
    /// streams, rank counts, and seeds, the replicate mean of the DES sits
    /// inside the M/G/1 envelope.
    #[test]
    fn mg1_bounds_hold_across_distributions_and_seeds(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 1..80),
        ranks in 1usize..20_000,
        dist_sel in 0u8..3,
        seed in any::<u64>(),
        broadcast in any::<bool>(),
    ) {
        let ops = stream_of(&spec);
        let cfg = LaunchConfig {
            broadcast_cache: broadcast,
            service_dist: ServiceDistribution::all()[dist_sel as usize % 3],
            seed,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&ops, &cfg);
        let rows = sweep_ranks_replicated(&stream, &cfg, &[ranks], 7);
        let (_, _, stats) = rows[0];
        let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
        prop_assert!(b.lower_ns <= b.upper_ns);
        let check = validate_against_mg1(&b, &stats);
        prop_assert!(
            check.within,
            "dist={} ranks={ranks} seed={seed}: mean {} outside [{}, {}] slack {}",
            cfg.service_dist.name(), check.observed_mean_ns, b.lower_ns, b.upper_ns,
            check.slack_ns
        );
    }

    /// The deterministic DES result itself (not just the replicate mean)
    /// always sits inside the envelope — zero slack involved.
    #[test]
    fn deterministic_result_always_inside_the_envelope(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 0..80),
        ranks in 1usize..20_000,
        broadcast in any::<bool>(),
    ) {
        let ops = stream_of(&spec);
        let cfg = LaunchConfig { broadcast_cache: broadcast, ..LaunchConfig::default() }
            .with_ranks(ranks);
        let stream = ClassifiedStream::classify(&ops, &cfg);
        let r = simulate_classified(&stream, &cfg);
        let b = mg1_bounds(&stream, &cfg);
        prop_assert!(
            (b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns),
            "{} outside [{}, {}]", r.time_to_launch_ns, b.lower_ns, b.upper_ns
        );
    }

    /// Whenever the analytic all-cold path engages, it is bit-identical to
    /// the reference oracle's full result.
    #[test]
    fn analytic_all_cold_matches_the_oracle_whenever_it_engages(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 1..80),
        ranks in 1usize..8_000,
    ) {
        let ops = stream_of(&spec);
        let cfg = LaunchConfig::default().with_ranks(ranks);
        let stream = ClassifiedStream::classify(&ops, &cfg);
        if let Some(analytic) = analytic_all_cold(&stream, &cfg) {
            prop_assert_eq!(analytic, simulate_launch_reference(&ops, &cfg));
        }
    }
}

/// The ISSUE's smoke test: 4,194,304 ranks (262,144 cold nodes), analytic
/// vs the independent heap-walking oracle, exactly — on a stream short
/// enough that the O(nodes × ops) oracle stays affordable in debug mode.
#[test]
fn four_million_rank_all_cold_analytic_matches_the_heap_exactly() {
    let ops = cold_stream(8);
    let cfg = LaunchConfig { ranks: 4_194_304, ranks_per_node: 16, ..LaunchConfig::default() };
    let stream = ClassifiedStream::classify(&ops, &cfg);
    let analytic = analytic_all_cold(&stream, &cfg).expect("uniform cold stream engages");
    assert_eq!(analytic, simulate_classified(&stream, &cfg));
    assert_eq!(analytic, simulate_launch_reference(&ops, &cfg));
    assert_eq!(analytic.nodes, 262_144);
    assert_eq!(analytic.peak_queue_depth, 262_144);
}

/// At full stream length the analytic path carries the 4Mi-rank all-cold
/// point alone — sub-second where the heap would schedule 131M events.
#[test]
fn four_million_rank_all_cold_simulates_subsecond() {
    let ops = cold_stream(500);
    let cfg = LaunchConfig { ranks: 4_194_304, ranks_per_node: 16, ..LaunchConfig::default() };
    let stream = ClassifiedStream::classify(&ops, &cfg);
    let t0 = Instant::now();
    let r = simulate_classified(&stream, &cfg);
    let elapsed = t0.elapsed();
    assert_eq!(Some(r), analytic_all_cold(&stream, &cfg));
    assert!(elapsed.as_secs_f64() < 1.0, "took {elapsed:?}");
    assert_eq!(r.server_ops, 262_144 * 500);
    // The envelope brackets even this point: capacity below, total
    // serialization above.
    let b = mg1_bounds(&stream, &cfg);
    assert!((b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns));
    assert!(b.utilisation > 1.0, "all-cold 262k nodes saturate the server");
}

/// The acceptance criterion on the sweep engine: every stochastic cell of
/// the fig6-dist sweep — all three workload shapes included — validates
/// against its M/G/1 envelope.
#[test]
fn fig6_dist_cells_validate_against_mg1() {
    let report = ExperimentMatrix::new()
        .workload(Pynamic::new(60))
        .workload(Axom::paper())
        .workload(Rocm::matched())
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .distributions(ServiceDistribution::all())
        .replicates(7)
        .rank_points([512usize, 2048, 16 * 1024])
        .run(&ProfileCache::new());
    assert_eq!(report.queueing_violations(), Vec::<(String, usize)>::new());
    for r in &report.results {
        assert_eq!(r.queueing.len(), 3, "{}", r.spec.label());
        for (ranks, q) in &r.queueing {
            assert!(q.within, "{} at {ranks}", r.spec.label());
            assert!(q.bounds.lower_ns <= q.bounds.upper_ns);
        }
    }
}

//! Listing 1, end to end: the dynamic load works, libtree says `not found`.

use depchaos::prelude::*;
use depchaos_workloads::samba;

#[test]
fn dynamic_load_succeeds_while_tree_shows_the_hole() {
    let fs = Vfs::local();
    samba::install(&fs).unwrap();

    let r = GlibcLoader::new(&fs).load(samba::TOOL_PATH).unwrap();
    assert!(r.success(), "{:?}", r.failures);

    let tree =
        analyze_tree(&fs, samba::TOOL_PATH, &Environment::default(), &LdCache::empty()).unwrap();
    let rendered = tree.render();
    assert!(rendered.contains("libsamba-debug-samba4.so not found"), "{rendered}");
    assert!(rendered.contains("[runpath]"));
    assert!(rendered.contains("[default path]"));
}

#[test]
fn shrinkwrap_makes_the_hole_impossible() {
    // After wrapping, the closure is explicit on the binary; the broken
    // library's request is a guaranteed dedup, not an accident of order.
    let fs = Vfs::local();
    samba::install(&fs).unwrap();
    let rep = depchaos_core::wrap(
        &fs,
        samba::TOOL_PATH,
        &ShrinkwrapOptions::new().env(Environment::default()),
    )
    .unwrap();
    assert!(rep.new_needed.iter().any(|p| p.ends_with(samba::HIDDEN_DEP)));
    // Removing the innocent sibling no longer breaks the tool (contrast
    // with the unwrapped behaviour tested in the workloads crate).
    let r = GlibcLoader::new(&fs).load(samba::TOOL_PATH).unwrap();
    assert!(r.success());
    assert_eq!(r.syscalls.misses, 0);
}

#[test]
fn wrap_report_lifts_the_transitive_set() {
    let fs = Vfs::local();
    samba::install(&fs).unwrap();
    let original = depchaos_elf::io::peek_object(&fs, samba::TOOL_PATH).unwrap();
    let rep = depchaos_core::wrap(
        &fs,
        samba::TOOL_PATH,
        &ShrinkwrapOptions::new().env(Environment::default()),
    )
    .unwrap();
    assert!(rep.new_needed.len() > original.needed.len(), "transitive deps lifted to the top");
    assert!(!rep.lifted().is_empty());
}

//! §III-C: the paper's two future-loader directions, exercised end to end
//! against the same workloads that defeat the legacy mechanisms.

use depchaos::prelude::*;
use depchaos_elf::SearchPosition;
use depchaos_loader::{FutureLoader, HashStoreService, ServiceLoader};
use depchaos_workloads::{paradox, rocm};

/// The Fig 3 layout is unsolvable with directory lists (proven in
/// fig3_paradox.rs) — and trivially solvable with per-dependency pins.
#[test]
fn future_loader_pins_solve_fig3() {
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    let pinned = ElfObject::exe("paradox_app")
        .needs("liba.so")
        .needs("libb.so")
        .pin("liba.so", format!("{}/liba.so", paradox::DIR_A))
        .pin("libb.so", format!("{}/libb.so", paradox::DIR_B))
        .build();
    depchaos_elf::io::install(&fs, paradox::EXE, &pinned).unwrap();
    let r = FutureLoader::new(&fs).with_env(Environment::bare()).load(paradox::EXE).unwrap();
    assert!(r.success());
    assert!(paradox::is_correct(&r));
}

/// The ROCm three-factor failure cannot happen under prepend/append/inherit
/// semantics: the app's inheritable prepend keeps governing transitive
/// lookups no matter what the vendor library carries.
#[test]
fn future_loader_defuses_rocm_interference() {
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    // Re-express the app's intent with the future mechanism: same
    // directory, but inheritable.
    let app = ElfObject::exe("gpu_sim")
        .needs("libamdhip64.so")
        .search_dir("/opt/rocm-4.5.0/lib", SearchPosition::Prepend, true)
        .build();
    depchaos_elf::io::install(&fs, rocm::APP, &app).unwrap();
    // Hostile module environment:
    let env = Environment::bare().with_ld_library_path("/opt/rocm-4.3.0/lib");
    let r = FutureLoader::new(&fs).with_env(env).load(rocm::APP).unwrap();
    assert!(r.success());
    assert_eq!(rocm::versions_loaded(&r), vec!["4.5.0"], "no mixing possible");
}

/// The Zircon-service direction: hash-addressed needed entries, resolved by
/// a content store, with an offline manifest ("provide all of the
/// dependencies it needs in place of distributing a static binary or a
/// container").
#[test]
fn hash_service_loads_and_manifests_a_stack() {
    let fs = Vfs::local();
    let mut svc = HashStoreService::new();

    // Build a three-deep hash-addressed stack bottom-up.
    depchaos_elf::io::install(&fs, "/cas/libz.so", &ElfObject::dso("libz.so").build()).unwrap();
    let z = svc.register(&fs, "/cas/libz.so").unwrap();
    depchaos_elf::io::install(&fs, "/cas/libssl.so", &ElfObject::dso("libssl.so").needs(z).build())
        .unwrap();
    let ssl = svc.register(&fs, "/cas/libssl.so").unwrap();
    depchaos_elf::io::install(&fs, "/bin/client", &ElfObject::exe("client").needs(ssl).build())
        .unwrap();

    // Offline manifest answers "what do I need to ship?"
    let manifest = svc.manifest(&fs, "/bin/client").unwrap();
    assert_eq!(manifest.len(), 2);

    // And the loader-service resolves the same entries at load time.
    let r = ServiceLoader::new(&fs, svc).load("/bin/client").unwrap();
    assert!(r.success());
    assert_eq!(r.objects.len(), 3);
}

/// Content addressing catches the supply-chain case a soname cannot: a
/// tampered library changes digest, so the load fails loudly instead of
/// running the wrong code.
#[test]
fn hash_service_detects_substitution() {
    let fs = Vfs::local();
    let mut svc = HashStoreService::new();
    depchaos_elf::io::install(&fs, "/cas/libz.so", &ElfObject::dso("libz.so").build()).unwrap();
    let z = svc.register(&fs, "/cas/libz.so").unwrap();
    depchaos_elf::io::install(&fs, "/bin/app", &ElfObject::exe("app").needs(z).build()).unwrap();

    // Replace the library content (a different build, a compromise...).
    depchaos_elf::io::install(
        &fs,
        "/cas/libz.so",
        &ElfObject::dso("libz.so").defines(Symbol::strong("evil")).build(),
    )
    .unwrap();
    // The index still points at the path, but re-registration would yield a
    // different digest; a verifying service drops the stale entry. Simulate
    // verification by rebuilding the index from current content:
    let mut fresh = HashStoreService::new();
    let new_ref = fresh.register(&fs, "/cas/libz.so").unwrap();
    assert_ne!(
        new_ref,
        format!("sha:{}", {
            // old digest from the needed entry on the binary
            let obj = depchaos_elf::io::peek_object(&fs, "/bin/app").unwrap();
            obj.needed[0].strip_prefix("sha:").unwrap().to_string()
        })
    );
    let r = ServiceLoader::new(&fs, fresh).load("/bin/app").unwrap();
    assert!(!r.success(), "stale digest no longer resolvable");
}

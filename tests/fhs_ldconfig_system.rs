//! The distribution-maintainer position from the §III-A Debian debate:
//! resolve everything through `ld.so.conf` + the ldconfig cache, no
//! per-binary paths at all — and its limits.

use depchaos::prelude::*;
use depchaos_elf::io::install;

/// A Debian-ish system: core libs in /usr/lib, an /opt vendor tree exposed
/// through ld.so.conf, binaries with zero RPATH/RUNPATH.
fn build() -> (Vfs, LdCache, Environment) {
    let fs = Vfs::local();
    let mut fhs = FhsInstaller::new();
    fhs.install(&fs, &PackageDef::new("glibc", "2.36").lib(LibDef::new("libc.so.6"))).unwrap();
    fhs.install(
        &fs,
        &PackageDef::new("zlib", "1.2").lib(LibDef::new("libz.so.1").needs("libc.so.6")),
    )
    .unwrap();
    // Vendor tree outside the FHS, registered via ld.so.conf.
    install(
        &fs,
        "/opt/vendor/lib/libvendor.so.3",
        &ElfObject::dso("libvendor.so.3").needs("libz.so.1").build(),
    )
    .unwrap();
    fhs.install(
        &fs,
        &PackageDef::new("tool", "1.0").bin(BinDef::new("tool").needs("libvendor.so.3")),
    )
    .unwrap();
    let env =
        Environment { ld_so_conf: vec!["/opt/vendor/lib".to_string()], ..Environment::default() };
    let cache = LdCache::ldconfig(&fs, &env.ld_so_conf);
    (fs, cache, env)
}

#[test]
fn cache_resolves_the_vendor_tree() {
    let (fs, cache, env) = build();
    let r = GlibcLoader::new(&fs).with_env(env).with_cache(cache).load("/usr/bin/tool").unwrap();
    assert!(r.success(), "{:?}", r.failures);
    let vendor = r.find("libvendor.so.3").unwrap();
    assert_eq!(vendor.path, "/opt/vendor/lib/libvendor.so.3");
    assert!(matches!(vendor.provenance, Provenance::LdSoCache));
    // And its own deps came from the default dirs.
    assert!(matches!(r.find("libz.so.1").unwrap().provenance, Provenance::DefaultPath));
}

#[test]
fn stale_cache_breaks_until_ldconfig_reruns() {
    // The maintainer's cost: every layout change needs an ldconfig run.
    let (fs, cache, env) = build();
    fs.remove("/opt/vendor/lib/libvendor.so.3").unwrap();
    install(
        &fs,
        "/opt/vendor2/lib/libvendor.so.3",
        &ElfObject::dso("libvendor.so.3").needs("libz.so.1").build(),
    )
    .unwrap();
    // Old cache points at the removed file: not found.
    let r = GlibcLoader::new(&fs)
        .with_env(env.clone())
        .with_cache(cache)
        .load("/usr/bin/tool")
        .unwrap();
    assert!(!r.success());
    // Re-run ldconfig over the updated conf: works again.
    let mut env2 = env;
    env2.ld_so_conf = vec!["/opt/vendor2/lib".to_string()];
    let cache2 = LdCache::ldconfig(&fs, &env2.ld_so_conf);
    let r2 = GlibcLoader::new(&fs).with_env(env2).with_cache(cache2).load("/usr/bin/tool").unwrap();
    assert!(r2.success());
}

#[test]
fn single_version_limit_of_the_cache() {
    // Two versions of the same soname in conf order: first dir wins for
    // everyone — the FHS "limited key space dilemma" survives in the cache.
    let (fs, _, mut env) = build();
    install(
        &fs,
        "/opt/vendor-new/lib/libvendor.so.3",
        &ElfObject::dso("libvendor.so.3").needs("libz.so.1").build(),
    )
    .unwrap();
    env.ld_so_conf = vec!["/opt/vendor/lib".to_string(), "/opt/vendor-new/lib".to_string()];
    let cache = LdCache::ldconfig(&fs, &env.ld_so_conf);
    assert_eq!(
        cache.lookup("libvendor.so.3", Machine::X86_64),
        Some("/opt/vendor/lib/libvendor.so.3"),
        "no way to give different consumers different versions"
    );
}

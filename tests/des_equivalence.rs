//! The coalesced DES is *exactly* the old DES, only faster.
//!
//! [`depchaos::launch::simulate_classified`] coalesces symmetric nodes
//! analytically and heap-schedules one event per server op; the retained
//! [`depchaos::launch::reference`] oracle walks every node through every op.
//! These properties pin the two to bit-identical [`LaunchResult`]s across
//! random streams, rank counts, node shapes, and cache policies — and the
//! smoke tests below hold the coalesced path to the scale target: 4M ranks,
//! sub-second, in release mode.

use std::time::Instant;

use depchaos::launch::{
    reference::simulate_launch_reference, replicate_seed, simulate_classified, simulate_launch,
    sweep_ranks_replicated, BatchPlan, ClassifiedStream, FaultModel, LaunchConfig, LaunchStats,
    ServiceDistribution,
};
use depchaos::vfs::{Op, Outcome, StraceLog, Syscall};
use proptest::prelude::*;

/// The distribution axis a selector index names in the properties below.
fn dist_of(sel: u8) -> ServiceDistribution {
    ServiceDistribution::all()[sel as usize % 3]
}

/// The fault axis a selector index names: healthy, a brownout inside the
/// fast streams' contention window, lossy RPC with retry/backoff, and a
/// straggler cohort — one of each [`FaultModel`] shape.
fn fault_of(sel: u8) -> FaultModel {
    [
        FaultModel::None,
        FaultModel::ServerStall { at_ns: 2_000_000, duration_ns: 300_000_000 },
        FaultModel::RpcLoss {
            loss_milli: 150,
            timeout_ns: 1_000_000,
            backoff_base_ns: 250_000,
            max_retries: 5,
        },
        FaultModel::Stragglers { frac_milli: 250, slow_milli: 4000 },
    ][sel as usize % 4]
}

/// Build a stream from `(kind, cost)` pairs. Kind picks the op; cost is
/// raw, so the classifier sees everything from sub-warm to multi-RTT and
/// payload-heavy reads.
fn stream_of(spec: &[(u8, u64)]) -> StraceLog {
    let mut log = StraceLog::new();
    for (i, &(kind, cost_ns)) in spec.iter().enumerate() {
        let (op, outcome) = match kind % 4 {
            0 => (Op::Stat, Outcome::Ok),
            1 => (Op::Openat, Outcome::Enoent),
            2 => (Op::Read, Outcome::Ok),
            _ => (Op::Readlink, Outcome::Ok),
        };
        log.push(Syscall::new(op, &format!("/p/{i}"), outcome, cost_ns));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coalesced == reference, bit for bit, over the whole input space the
    /// sweep engine exercises — including the stochastic service
    /// distributions, whose per-(node, segment) draws the two
    /// implementations must take identically, and every fault model,
    /// whose FAULT-domain draws and stall/retry arithmetic must land
    /// event-for-event in both engines.
    #[test]
    fn coalesced_des_matches_reference(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 0..120),
        ranks in 1usize..6000,
        rpn_sel in 0usize..4,
        knobs in 0u8..8,
        dist_sel in 0u8..3,
        fault_sel in 0u8..4,
        seed in any::<u64>(),
    ) {
        let ops = stream_of(&spec);
        let cfg = LaunchConfig {
            ranks,
            ranks_per_node: [1, 16, 128, 997][rpn_sel],
            broadcast_cache: knobs & 1 != 0,
            base_overhead_ns: if knobs & 2 != 0 { 25_000_000_000 } else { 0 },
            per_rank_overhead_ns: if knobs & 4 != 0 { 10_000_000 } else { 0 },
            service_dist: dist_of(dist_sel),
            fault: fault_of(fault_sel),
            seed,
            ..LaunchConfig::default()
        };
        let fast = simulate_launch(&ops, &cfg);
        let slow = simulate_launch_reference(&ops, &cfg);
        prop_assert_eq!(fast, slow);
    }

    /// The pre-axis DES is exactly `Deterministic`: on any stream and any
    /// seed, the deterministic distribution reproduces the reference
    /// oracle's pre-distribution walk bit for bit, and the seed cannot leak
    /// into the result (no draws ever occur).
    #[test]
    fn deterministic_distribution_is_bit_identical_to_pre_axis_des(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 0..100),
        ranks in 1usize..6000,
        broadcast in any::<bool>(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let ops = stream_of(&spec);
        let base = LaunchConfig {
            ranks,
            broadcast_cache: broadcast,
            service_dist: ServiceDistribution::Deterministic,
            ..LaunchConfig::default()
        };
        let with_a = simulate_launch(&ops, &LaunchConfig { seed: seed_a, ..base.clone() });
        let with_b = simulate_launch(&ops, &LaunchConfig { seed: seed_b, ..base.clone() });
        prop_assert_eq!(&with_a, &with_b, "seed must not reach a deterministic simulation");
        prop_assert_eq!(with_a, simulate_launch_reference(&ops, &base));
    }

    /// Stochastic runs reproduce: the same (stream, config, seed) triple
    /// yields the same result on both paths, and a shared classification
    /// replayed per point still matches fresh per-point classification.
    #[test]
    fn stochastic_draws_are_pure_data(
        spec in prop::collection::vec((0u8..4, 0u64..1_000_000), 1..80),
        points in prop::collection::vec(1usize..5000, 1..4),
        dist_sel in 1u8..3, // only the stochastic variants
        seed in any::<u64>(),
    ) {
        let ops = stream_of(&spec);
        let base = LaunchConfig {
            service_dist: dist_of(dist_sel),
            seed,
            ..LaunchConfig::default()
        };
        let classified = ClassifiedStream::classify(&ops, &base);
        for ranks in points {
            let cfg = base.clone().with_ranks(ranks);
            let shared = simulate_classified(&classified, &cfg);
            prop_assert_eq!(&shared, &simulate_classified(&classified, &cfg));
            prop_assert_eq!(shared, simulate_launch_reference(&ops, &cfg));
        }
    }

    /// One classification serves every rank point of a sweep: replaying a
    /// shared [`ClassifiedStream`] equals classifying fresh at each point.
    #[test]
    fn shared_classification_matches_per_point(
        spec in prop::collection::vec((0u8..4, 0u64..1_000_000), 1..80),
        points in prop::collection::vec(1usize..5000, 1..5),
    ) {
        let ops = stream_of(&spec);
        let base = LaunchConfig::default();
        let classified = ClassifiedStream::classify(&ops, &base);
        for ranks in points {
            let cfg = base.clone().with_ranks(ranks);
            prop_assert_eq!(
                simulate_classified(&classified, &cfg),
                simulate_launch_reference(&ops, &cfg)
            );
        }
    }

    /// A columnar [`BatchPlan`] mixing every distribution, fault model,
    /// wrap-like stream shape, and cache policy in one batch equals
    /// per-call `simulate_classified` — and the reference oracle — row for
    /// row. This is the gather/partition/dedup/scatter machinery under
    /// test: rows land in all four solver classes (faulted rows demote to
    /// the heap class) and kernels collapse across rows, yet the output
    /// must be indistinguishable from never having batched at all.
    #[test]
    fn batch_plan_matches_per_call_and_reference(
        spec in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..80),
        rows in prop::collection::vec(
            (1usize..5000, 0usize..4, any::<bool>(), 0u8..3, 0u8..4, any::<u64>()),
            1..8,
        ),
    ) {
        let ops = stream_of(&spec);
        // One classification per distribution (the distribution is part
        // of the calibration key); the plan holds all three at once.
        let streams: Vec<(ClassifiedStream, LaunchConfig)> = (0u8..3)
            .map(|d| {
                let cfg = LaunchConfig { service_dist: dist_of(d), ..LaunchConfig::default() };
                (ClassifiedStream::classify(&ops, &cfg), cfg)
            })
            .collect();
        let mut plan = BatchPlan::new();
        let ids: Vec<_> = streams.iter().map(|(s, _)| plan.stream(s)).collect();
        let mut cfgs = Vec::new();
        for &(ranks, rpn_sel, broadcast, dist_sel, fault_sel, seed) in &rows {
            let cfg = LaunchConfig {
                ranks,
                ranks_per_node: [1, 16, 128, 997][rpn_sel],
                broadcast_cache: broadcast,
                fault: fault_of(fault_sel),
                seed,
                ..streams[dist_sel as usize].1.clone()
            };
            plan.push(ids[dist_sel as usize], &cfg);
            cfgs.push((dist_sel as usize, cfg));
        }
        let got = plan.execute();
        prop_assert_eq!(got.len(), cfgs.len());
        for (row, (di, cfg)) in got.iter().zip(&cfgs) {
            prop_assert_eq!(row, &simulate_classified(&streams[*di].0, cfg));
            prop_assert_eq!(row, &simulate_launch_reference(&ops, cfg));
        }
    }

    /// The batched `sweep_ranks_replicated` is byte-identical to the
    /// per-call loop it replaced: per rank point, replicate `r` simulates
    /// under `replicate_seed(base, r)`, replicate 0 is the series value,
    /// and the stats summarise the replicate sample.
    #[test]
    fn batched_replicated_sweep_equals_per_call_loop(
        spec in prop::collection::vec((0u8..4, 0u64..1_000_000), 1..60),
        points in prop::collection::vec(1usize..5000, 1..4),
        dist_sel in 0u8..3,
        fault_sel in 0u8..4,
        replicates in 1usize..6,
        seed in any::<u64>(),
    ) {
        let ops = stream_of(&spec);
        let base = LaunchConfig {
            service_dist: dist_of(dist_sel),
            fault: fault_of(fault_sel),
            seed,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&ops, &base);
        let batched = sweep_ranks_replicated(&stream, &base, &points, replicates);
        // The sweep clamps to one replicate only when *no* draws occur:
        // deterministic service and a draw-free fault model.
        let k = if base.service_dist.is_deterministic() && !base.fault.takes_draws() {
            1
        } else {
            replicates
        };
        prop_assert_eq!(batched.len(), points.len());
        for (&(ranks, first, stats), &want_ranks) in batched.iter().zip(&points) {
            prop_assert_eq!(ranks, want_ranks);
            let mut samples: Vec<u64> = Vec::with_capacity(k);
            for r in 0..k {
                let cfg = base.clone().with_ranks(ranks).with_seed(replicate_seed(seed, r));
                let res = simulate_classified(&stream, &cfg);
                if r == 0 {
                    prop_assert_eq!(&first, &res);
                }
                samples.push(res.time_to_launch_ns);
            }
            prop_assert_eq!(stats, LaunchStats::from_samples(&mut samples));
        }
    }
}

/// A 500-op cold metadata stream, the ISSUE's acceptance shape.
fn cold_500() -> StraceLog {
    let mut log = StraceLog::new();
    for i in 0..500 {
        log.push(Syscall::new(Op::Openat, &format!("/lib/l{i}.so"), Outcome::Enoent, 200_000));
    }
    log
}

fn four_mi_ranks() -> LaunchConfig {
    LaunchConfig { ranks: 4_194_304, ranks_per_node: 16, ..LaunchConfig::default() }
}

/// The acceptance bar: 4,194,304 ranks (262,144 nodes), 500-op stream,
/// under one second. Spindle broadcast leaves one cold node; the other
/// 262,143 coalesce to arithmetic.
#[test]
fn four_million_rank_broadcast_simulates_subsecond() {
    let ops = cold_500();
    let cfg = LaunchConfig { broadcast_cache: true, ..four_mi_ranks() };
    let t0 = Instant::now();
    let r = simulate_launch(&ops, &cfg);
    let elapsed = t0.elapsed();
    assert_eq!(r.nodes, 262_144);
    assert_eq!(r.server_ops, 500);
    assert_eq!(r.local_ops, 262_143u64 * 500);
    assert!(r.peak_queue_depth <= 1, "one cold node never queues behind itself");
    if !cfg!(debug_assertions) {
        assert!(elapsed.as_secs_f64() < 1.0, "release-mode budget blown: {elapsed:?}");
    }
}

/// The shrinkwrapped shape at the same scale: a 500-op stream the node
/// caches absorb entirely. All 262,144 nodes are cold yet serverless, so
/// the whole fleet coalesces.
#[test]
fn four_million_rank_warm_stream_simulates_subsecond() {
    let mut ops = StraceLog::new();
    for i in 0..500 {
        ops.push(Syscall::new(Op::Stat, &format!("/wrapped/l{i}.so"), Outcome::Ok, 1_000));
    }
    let cfg = four_mi_ranks();
    let t0 = Instant::now();
    let r = simulate_launch(&ops, &cfg);
    let elapsed = t0.elapsed();
    assert_eq!(r.server_ops, 0);
    assert_eq!(r.local_ops, 262_144u64 * 500);
    if !cfg!(debug_assertions) {
        assert!(elapsed.as_secs_f64() < 1.0, "release-mode budget blown: {elapsed:?}");
    }
}

/// Scale sanity at full contention, sized so the reference can confirm it:
/// the coalesced heap still agrees with the oracle when *every* node is
/// cold and queueing.
#[test]
fn all_cold_contention_still_exact_at_scale() {
    let ops = cold_500();
    let cfg = LaunchConfig {
        ranks: 16_384,
        ranks_per_node: 16, // 1024 cold nodes
        ..LaunchConfig::default()
    };
    assert_eq!(simulate_launch(&ops, &cfg), simulate_launch_reference(&ops, &cfg));
}

/// Fixed-seed integration pin: a whole matrix — every wrap state, every
/// cache policy, all three service distributions — runs through the
/// batched `ExperimentMatrix::run`, and every series / stats / queueing
/// entry equals a from-scratch per-call recomputation (fresh
/// classification, per-replicate `simulate_classified`, the same M/G/1
/// check). If any layer of the batch path — gathering, partitioning,
/// kernel dedup, lockstep advance, scatter — drifted by one bit, some
/// cell here would differ.
#[test]
fn batched_matrix_is_bit_identical_to_per_call_recomputation() {
    use depchaos::launch::{
        mg1_bounds, scenario_seed, validate_against_mg1, CachePolicy, ExperimentMatrix,
        MatrixBackend, ProfileCache, WrapState,
    };
    use depchaos::vfs::StorageModel;
    use depchaos::workloads::Pynamic;

    let replicates = 3usize;
    let rank_points = [256usize, 512];
    let matrix = ExperimentMatrix::new()
        .workload(Pynamic::new(20))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies(CachePolicy::all())
        .distributions(ServiceDistribution::all())
        .faults([
            FaultModel::None,
            FaultModel::ServerStall { at_ns: 2_000_000, duration_ns: 300_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 150,
                timeout_ns: 1_000_000,
                backoff_base_ns: 250_000,
                max_retries: 5,
            },
        ])
        .replicates(replicates)
        .rank_points(rank_points);
    let cache = ProfileCache::new();
    let report = matrix.run(&cache);
    let scenarios = matrix.expand();
    assert_eq!(report.results.len(), scenarios.len());

    let base = matrix.base();
    for (s, r) in scenarios.iter().zip(&report.results) {
        let cell = cache.get_or_profile(s.workload.as_ref(), &s.backend, s.storage);
        let mut cfg = s.cache.apply(base.clone());
        cfg.service_dist = s.dist;
        cfg.fault = s.fault;
        cfg.seed = scenario_seed(base.seed, &s.spec().label());
        let p = match cell.outcome(s.wrap) {
            Ok(p) => p,
            Err(e) => {
                assert_eq!(r.error.as_ref(), Some(e));
                continue;
            }
        };
        assert!(r.error.is_none());
        // Classify from scratch — not through the cache the run used.
        let stream = ClassifiedStream::classify(&p.log, &cfg);
        let k = if s.dist.is_deterministic() && !s.fault.takes_draws() { 1 } else { replicates };
        for (pi, &ranks) in rank_points.iter().enumerate() {
            let mut samples: Vec<u64> = Vec::with_capacity(k);
            for rep in 0..k {
                let c = cfg.clone().with_ranks(ranks).with_seed(replicate_seed(cfg.seed, rep));
                let res = simulate_classified(&stream, &c);
                if rep == 0 {
                    assert_eq!(r.series[pi], (ranks, res));
                }
                samples.push(res.time_to_launch_ns);
            }
            let st = LaunchStats::from_samples(&mut samples);
            assert_eq!(r.stats[pi], (ranks, st));
            let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
            assert_eq!(r.queueing[pi], (ranks, validate_against_mg1(&b, &st)));
        }
    }
}

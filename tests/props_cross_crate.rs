//! Cross-crate property tests: random package universes through the whole
//! pipeline (store install → load → shrinkwrap → reload).

use depchaos::prelude::{
    BinDef, BundleInstaller, DepGraph, Environment, FhsInstaller, GlibcLoader, LibDef,
    PackageDef, Repo, ShrinkwrapOptions, StoreInstaller, Vfs,
};
use proptest::prelude::*;

/// A random acyclic package universe: `n` packages, package i may depend on
/// packages with larger indices (so the graph is a DAG by construction).
/// Every package provides one library; package 0 additionally provides the
/// binary under test.
fn universe_strat() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (2usize..12).prop_flat_map(|n| {
        let deps = prop::collection::vec(prop::collection::vec(0usize..n, 0..3), n);
        (Just(n), deps).prop_map(|(n, raw)| {
            let deps: Vec<Vec<usize>> = raw
                .into_iter()
                .enumerate()
                .map(|(i, ds)| {
                    let mut ds: Vec<usize> =
                        ds.into_iter().filter(|&d| d > i && d < n).collect();
                    ds.sort();
                    ds.dedup();
                    ds
                })
                .collect();
            (n, deps)
        })
    })
}

fn build_repo(n: usize, deps: &[Vec<usize>]) -> Repo {
    let mut repo = Repo::new();
    for i in 0..n {
        let mut pkg = PackageDef::new(format!("pkg{i}"), "1.0");
        let mut lib = LibDef::new(format!("libpkg{i}.so"));
        for &d in &deps[i] {
            pkg = pkg.dep(format!("pkg{d}"));
            lib = lib.needs(format!("libpkg{d}.so"));
        }
        pkg = pkg.lib(lib);
        if i == 0 {
            let mut b = BinDef::new("main");
            b = b.needs("libpkg0.so");
            for &d in &deps[0] {
                b = b.needs(format!("libpkg{d}.so"));
            }
            pkg = pkg.bin(b);
        }
        repo.add(pkg);
    }
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any store-installed DAG loads hermetically, and shrinkwrapping it
    /// (a) succeeds, (b) never increases syscalls, (c) is idempotent.
    #[test]
    fn store_install_load_wrap_roundtrip((n, deps) in universe_strat()) {
        let repo = build_repo(n, &deps);
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let pkg0 = store.install(&fs, &repo, "pkg0").unwrap();
        let bin = format!("{}/main", pkg0.bin_dir);

        let env = Environment::bare();
        let before = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
        prop_assert!(before.success(), "{:?}", before.failures);

        let rep1 = depchaos_core::wrap(
            &fs, &bin, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
        let after = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
        prop_assert!(after.success(), "{:?}", after.failures);
        prop_assert!(after.stat_openat() <= before.stat_openat());
        prop_assert_eq!(after.syscalls.misses, 0);
        // Same set of objects loaded, wrapped or not.
        let mut a: Vec<_> = before.objects.iter().map(|o| o.canonical.clone()).collect();
        let mut b: Vec<_> = after.objects.iter().map(|o| o.canonical.clone()).collect();
        a.sort(); b.sort();
        prop_assert_eq!(a, b);

        let rep2 = depchaos_core::wrap(
            &fs, &bin, &ShrinkwrapOptions::new().env(env)).unwrap();
        prop_assert_eq!(rep1.new_needed, rep2.new_needed, "idempotent");
    }

    /// The loader's BFS load order equals the dependency graph's BFS
    /// closure order (the property the needy-executables trick rests on).
    #[test]
    fn loader_order_matches_graph_bfs((n, deps) in universe_strat()) {
        let repo = build_repo(n, &deps);
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let pkg0 = store.install(&fs, &repo, "pkg0").unwrap();
        let bin = format!("{}/main", pkg0.bin_dir);
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap();
        prop_assert!(r.success());

        // Graph: main -> libpkg0 + deps(0); libpkg_i -> deps(i).
        let mut g = DepGraph::new();
        let root = g.add_node("main");
        let l0 = g.add_node("libpkg0.so");
        g.add_edge(root, l0);
        for &d in &deps[0] {
            let t = g.add_node(format!("libpkg{d}.so"));
            g.add_edge(root, t);
        }
        for (i, ds) in deps.iter().enumerate() {
            let from = g.add_node(format!("libpkg{i}.so"));
            for &d in ds {
                let to = g.add_node(format!("libpkg{d}.so"));
                g.add_edge(from, to);
            }
        }
        let expect: Vec<String> =
            g.closure_bfs(root).iter().map(|&id| g.name(id).to_string()).collect();
        let got: Vec<String> = r
            .objects
            .iter()
            .skip(1)
            .map(|o| o.object.effective_soname().to_string())
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// FHS vs store vs bundle: all three deployments of the same universe
    /// produce a working binary; the models differ in layout, not outcome.
    #[test]
    fn all_deployment_models_load((n, deps) in universe_strat()) {
        let repo = build_repo(n, &deps);

        // FHS (install in reverse-dependency order like a distro would).
        let fs = Vfs::local();
        let mut fhs = FhsInstaller::new();
        for i in (0..n).rev() {
            fhs.install(&fs, repo.get(&format!("pkg{i}")).unwrap()).unwrap();
        }
        let r = GlibcLoader::new(&fs).load("/usr/bin/main").unwrap();
        prop_assert!(r.success(), "FHS: {:?}", r.failures);

        // Store.
        let fs2 = Vfs::local();
        let mut store = StoreInstaller::nix_like();
        let p = store.install(&fs2, &repo, "pkg0").unwrap();
        let r2 = GlibcLoader::new(&fs2)
            .with_env(Environment::bare())
            .load(&format!("{}/main", p.bin_dir))
            .unwrap();
        prop_assert!(r2.success(), "store: {:?}", r2.failures);

        // Bundle.
        let fs3 = Vfs::local();
        let mut bundle = BundleInstaller::new("/apps");
        let dir = bundle.install(&fs3, &repo, "pkg0").unwrap();
        let r3 = GlibcLoader::new(&fs3)
            .with_env(Environment::bare())
            .load(&format!("{dir}/bin/main"))
            .unwrap();
        prop_assert!(r3.success(), "bundle: {:?}", r3.failures);
    }
}

//! Cross-crate property tests: random package universes through the whole
//! pipeline (store install → load → shrinkwrap → reload).

use depchaos::elf::{io::install, SearchPosition};
use depchaos::prelude::{
    BinDef, BundleInstaller, DepGraph, ElfObject, Environment, FhsInstaller, GlibcLoader, LibDef,
    LoaderBackend, MuslLoader, PackageDef, Repo, ShrinkwrapOptions, StoreInstaller, Vfs,
};
use proptest::prelude::*;

/// A random acyclic package universe: `n` packages, package i may depend on
/// packages with larger indices (so the graph is a DAG by construction).
/// Every package provides one library; package 0 additionally provides the
/// binary under test.
fn universe_strat() -> impl Strategy<Value = (usize, Vec<Vec<usize>>)> {
    (2usize..12).prop_flat_map(|n| {
        let deps = prop::collection::vec(prop::collection::vec(0usize..n, 0..3), n);
        (Just(n), deps).prop_map(|(n, raw)| {
            let deps: Vec<Vec<usize>> = raw
                .into_iter()
                .enumerate()
                .map(|(i, ds)| {
                    let mut ds: Vec<usize> = ds.into_iter().filter(|&d| d > i && d < n).collect();
                    ds.sort();
                    ds.dedup();
                    ds
                })
                .collect();
            (n, deps)
        })
    })
}

fn build_repo(n: usize, deps: &[Vec<usize>]) -> Repo {
    let mut repo = Repo::new();
    for i in 0..n {
        let mut pkg = PackageDef::new(format!("pkg{i}"), "1.0");
        let mut lib = LibDef::new(format!("libpkg{i}.so"));
        for &d in &deps[i] {
            pkg = pkg.dep(format!("pkg{d}"));
            lib = lib.needs(format!("libpkg{d}.so"));
        }
        pkg = pkg.lib(lib);
        if i == 0 {
            let mut b = BinDef::new("main");
            b = b.needs("libpkg0.so");
            for &d in &deps[0] {
                b = b.needs(format!("libpkg{d}.so"));
            }
            pkg = pkg.bin(b);
        }
        repo.add(pkg);
    }
    repo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any store-installed DAG loads hermetically, and shrinkwrapping it
    /// (a) succeeds, (b) never increases syscalls, (c) is idempotent.
    #[test]
    fn store_install_load_wrap_roundtrip((n, deps) in universe_strat()) {
        let repo = build_repo(n, &deps);
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let pkg0 = store.install(&fs, &repo, "pkg0").unwrap();
        let bin = format!("{}/main", pkg0.bin_dir);

        let env = Environment::bare();
        let before = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
        prop_assert!(before.success(), "{:?}", before.failures);

        let rep1 = depchaos_core::wrap(
            &fs, &bin, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
        let after = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
        prop_assert!(after.success(), "{:?}", after.failures);
        prop_assert!(after.stat_openat() <= before.stat_openat());
        prop_assert_eq!(after.syscalls.misses, 0);
        // Same set of objects loaded, wrapped or not.
        let mut a: Vec<_> = before.objects.iter().map(|o| o.canonical.clone()).collect();
        let mut b: Vec<_> = after.objects.iter().map(|o| o.canonical.clone()).collect();
        a.sort(); b.sort();
        prop_assert_eq!(a, b);

        let rep2 = depchaos_core::wrap(
            &fs, &bin, &ShrinkwrapOptions::new().env(env)).unwrap();
        prop_assert_eq!(rep1.new_needed, rep2.new_needed, "idempotent");
    }

    /// The loader's BFS load order equals the dependency graph's BFS
    /// closure order (the property the needy-executables trick rests on).
    #[test]
    fn loader_order_matches_graph_bfs((n, deps) in universe_strat()) {
        let repo = build_repo(n, &deps);
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let pkg0 = store.install(&fs, &repo, "pkg0").unwrap();
        let bin = format!("{}/main", pkg0.bin_dir);
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap();
        prop_assert!(r.success());

        // Graph: main -> libpkg0 + deps(0); libpkg_i -> deps(i).
        let mut g = DepGraph::new();
        let root = g.add_node("main");
        let l0 = g.add_node("libpkg0.so");
        g.add_edge(root, l0);
        for &d in &deps[0] {
            let t = g.add_node(format!("libpkg{d}.so"));
            g.add_edge(root, t);
        }
        for (i, ds) in deps.iter().enumerate() {
            let from = g.add_node(format!("libpkg{i}.so"));
            for &d in ds {
                let to = g.add_node(format!("libpkg{d}.so"));
                g.add_edge(from, to);
            }
        }
        let expect: Vec<String> =
            g.closure_bfs(root).iter().map(|&id| g.name(id).to_string()).collect();
        let got: Vec<String> = r
            .objects
            .iter()
            .skip(1)
            .map(|o| o.object.effective_soname().to_string())
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// FHS vs store vs bundle: all three deployments of the same universe
    /// produce a working binary; the models differ in layout, not outcome.
    #[test]
    fn all_deployment_models_load((n, deps) in universe_strat()) {
        let repo = build_repo(n, &deps);

        // FHS (install in reverse-dependency order like a distro would).
        let fs = Vfs::local();
        let mut fhs = FhsInstaller::new();
        for i in (0..n).rev() {
            fhs.install(&fs, repo.get(&format!("pkg{i}")).unwrap()).unwrap();
        }
        let r = GlibcLoader::new(&fs).load("/usr/bin/main").unwrap();
        prop_assert!(r.success(), "FHS: {:?}", r.failures);

        // Store.
        let fs2 = Vfs::local();
        let mut store = StoreInstaller::nix_like();
        let p = store.install(&fs2, &repo, "pkg0").unwrap();
        let r2 = GlibcLoader::new(&fs2)
            .with_env(Environment::bare())
            .load(&format!("{}/main", p.bin_dir))
            .unwrap();
        prop_assert!(r2.success(), "store: {:?}", r2.failures);

        // Bundle.
        let fs3 = Vfs::local();
        let mut bundle = BundleInstaller::new("/apps");
        let dir = bundle.install(&fs3, &repo, "pkg0").unwrap();
        let r3 = GlibcLoader::new(&fs3)
            .with_env(Environment::bare())
            .load(&format!("{dir}/bin/main"))
            .unwrap();
        prop_assert!(r3.success(), "bundle: {:?}", r3.failures);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Soname-aliased closures (the shrinkwrapped shape): the executable
    /// references every library by absolute path; libraries reference each
    /// other by bare soname and carry no search paths. glibc's soname
    /// dedup cache satisfies every bare request; musl, with no soname
    /// cache, fails exactly when a transitive bare request exists (§IV).
    #[test]
    fn glibc_musl_dedup_divergence_on_soname_aliased_closures((n, deps) in universe_strat()) {
        let fs = Vfs::local();
        let mut exe = ElfObject::exe("main");
        for (i, ds) in deps.iter().enumerate() {
            let mut lib = ElfObject::dso(format!("libpkg{i}.so"));
            for &d in ds {
                lib = lib.needs(format!("libpkg{d}.so"));
            }
            install(&fs, &format!("/store/pkg{i}/libpkg{i}.so"), &lib.build()).unwrap();
            exe = exe.needs(format!("/store/pkg{i}/libpkg{i}.so"));
        }
        install(&fs, "/bin/main", &exe.build()).unwrap();

        let g = GlibcLoader::new(&fs).with_env(Environment::bare()).load("/bin/main").unwrap();
        prop_assert!(g.success(), "glibc dedups by soname: {:?}", g.failures);
        prop_assert_eq!(g.objects.len(), n + 1, "nothing loaded twice under glibc");

        let m = MuslLoader::new(&fs).with_env(Environment::bare()).load("/bin/main").unwrap();
        let any_transitive = deps.iter().any(|d| !d.is_empty());
        prop_assert_eq!(
            !m.success(),
            any_transitive,
            "musl fails iff a bare transitive request exists: {:?}",
            m.failures
        );
    }

    /// wrap() is idempotent under every stock Loader backend, each given
    /// options its semantics can satisfy on the same package universe.
    #[test]
    fn wrap_idempotent_under_every_backend((n, deps) in universe_strat()) {
        // glibc and musl resolve the store's RUNPATH layout. musl keeps the
        // search paths on the wrapped binary so its re-resolution can
        // rescue bare transitive requests through inode dedup.
        for (backend, opts) in [
            (LoaderBackend::glibc(), ShrinkwrapOptions::new().env(Environment::bare())),
            (
                LoaderBackend::musl(),
                ShrinkwrapOptions::new().env(Environment::bare()).strip_search_paths(false),
            ),
        ] {
            let repo = build_repo(n, &deps);
            let fs = Vfs::local();
            let mut store = StoreInstaller::spack_like();
            let pkg0 = store.install(&fs, &repo, "pkg0").unwrap();
            let bin = format!("{}/main", pkg0.bin_dir);
            let opts = opts.backend(backend.clone());
            let first = depchaos_core::wrap(&fs, &bin, &opts).unwrap();
            let second = depchaos_core::wrap(&fs, &bin, &opts).unwrap();
            prop_assert_eq!(
                &first.new_needed,
                &second.new_needed,
                "{} backend not idempotent",
                backend.name()
            );
            prop_assert!(first.new_needed.iter().all(|p| p.contains('/')), "fully frozen");
        }

        // The future backend wraps a search_dir-styled copy of the same
        // universe (it ignores RPATH/RUNPATH by design).
        let fs = Vfs::local();
        let mut exe =
            ElfObject::exe("main").search_dir("/libs", SearchPosition::Prepend, true).needs("libpkg0.so");
        for &d in &deps[0] {
            exe = exe.needs(format!("libpkg{d}.so"));
        }
        for (i, ds) in deps.iter().enumerate() {
            let mut lib = ElfObject::dso(format!("libpkg{i}.so"));
            for &d in ds {
                lib = lib.needs(format!("libpkg{d}.so"));
            }
            install(&fs, &format!("/libs/libpkg{i}.so"), &lib.build()).unwrap();
        }
        install(&fs, "/bin/main", &exe.build()).unwrap();
        let opts =
            ShrinkwrapOptions::new().env(Environment::bare()).backend(LoaderBackend::future());
        let first = depchaos_core::wrap(&fs, "/bin/main", &opts).unwrap();
        let second = depchaos_core::wrap(&fs, "/bin/main", &opts).unwrap();
        prop_assert_eq!(&first.new_needed, &second.new_needed, "future backend not idempotent");
    }
}

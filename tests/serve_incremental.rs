//! The serve layer's headline guarantee, end to end through the facade:
//! a warm replay performs **zero** DES simulations yet yields a
//! `SweepReport` equal to a cold full run — through the on-disk store,
//! across processes-worth of reload, and under store damage.
//!
//! (`cells_profiled` is execution accounting, not result data — a warm
//! run profiles nothing by design — so equality here is over `results`
//! and `rank_points`, the simulated payload.)

use std::path::PathBuf;

use depchaos::launch::{
    CachePolicy, ExperimentMatrix, FaultModel, MatrixBackend, ProfileCache, ServiceDistribution,
    WrapState,
};
use depchaos::prelude::*;
use depchaos::serve::{run_matrix_incremental, serve_batch, ENGINE_EPOCH};
use depchaos::workloads::Pynamic;

fn matrix() -> ExperimentMatrix {
    ExperimentMatrix::new()
        .workload(Pynamic::new(25))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states([WrapState::Plain, WrapState::Wrapped])
        .cache_policies([CachePolicy::Cold, CachePolicy::Broadcast])
        .distributions([ServiceDistribution::Deterministic, ServiceDistribution::log_normal(0.5)])
        .replicates(3)
        .rank_points([256usize, 512])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("depchaos-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_replay_from_disk_is_bit_identical_and_simulation_free() {
    let cold_direct = matrix().run(&ProfileCache::new());

    let dir = temp_dir("warmcold");
    // Cold pass: populate the store on disk.
    {
        let store = ResultStore::open(&dir).unwrap();
        let (report, stats) =
            run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 2).unwrap();
        assert_eq!(report.results, cold_direct.results);
        assert_eq!(stats.cold_cells, stats.cells_total);
    }
    // Warm pass: a fresh store handle (fresh process, as far as the store
    // can tell) and a fresh profile cache. Zero profiling runs = zero
    // simulations — `run_scenario` cannot simulate without profiling its
    // cell first, so the counter staying at zero proves the DES never ran.
    {
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.load_stats().corrupt_skipped, 0);
        let profiles = ProfileCache::new();
        let (report, stats) = run_matrix_incremental(&matrix(), &store, &profiles, 2).unwrap();
        assert_eq!(report.results, cold_direct.results, "warm == cold, through the disk");
        assert_eq!(report.rank_points, cold_direct.rank_points);
        assert_eq!(stats.cold_cells, 0);
        assert_eq!(stats.warm_hits, stats.cells_total);
        assert_eq!(profiles.computed(), 0, "no profiling ⇒ no simulation");
        assert_eq!(profiles.classified_computed(), 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn damaged_stores_degrade_to_partial_warmth_never_wrong_answers() {
    let dir = temp_dir("damage");
    let cold = {
        let store = ResultStore::open(&dir).unwrap();
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap().0
    };

    // Tear the final record mid-line, as a crash during append would.
    let log = dir.join("store.jsonl");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 25]).unwrap();

    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.load_stats().corrupt_skipped, 1, "exactly the torn line dropped");
    let (report, stats) =
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
    assert_eq!(stats.cold_cells, 1, "only the damaged cell re-simulates");
    assert_eq!(report.results, cold.results, "answers identical regardless");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_appends_resolve_last_write_wins_across_reload() {
    let dir = temp_dir("dup");
    {
        let store = ResultStore::open(&dir).unwrap();
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
        // Re-running the same matrix is all-warm: no re-append, no dups.
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
    }
    {
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.load_stats().duplicates, 0);
        // Force duplicates: append every live record a second time.
        let line = std::fs::read_to_string(dir.join("store.jsonl")).unwrap();
        let first = depchaos::serve::CellRecord::decode(line.lines().next().unwrap()).unwrap();
        store.put(first.clone()).unwrap();
        store.put(first).unwrap();
    }
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.load_stats().duplicates, 2, "last write wins, counted");
    let (_, stats) = run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
    assert_eq!(stats.cold_cells, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn epoch_mismatch_evicts_wholesale_on_load() {
    let dir = temp_dir("epoch");
    {
        let store = ResultStore::open(&dir).unwrap();
        run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
    }
    // Rewrite the log as if a previous engine epoch had produced it.
    let log = dir.join("store.jsonl");
    let old = std::fs::read_to_string(&log).unwrap();
    let stale = old.replace(
        &format!("\"epoch\":{ENGINE_EPOCH},"),
        &format!("\"epoch\":{},", ENGINE_EPOCH.wrapping_sub(1)),
    );
    assert_ne!(old, stale);
    std::fs::write(&log, stale).unwrap();

    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len(), 0, "stale-epoch records never serve");
    assert_eq!(store.load_stats().epoch_evicted, 16);
    let (_, stats) = run_matrix_incremental(&matrix(), &store, &ProfileCache::new(), 1).unwrap();
    assert_eq!(stats.cold_cells, 16, "everything re-simulates under the new epoch");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Panic isolation end to end through the batch front door and the disk
/// store: one deliberately-panicking cell (the `poison` workload) in the
/// middle of a batch must not take the process, its own query's other
/// cells' accounting, or its neighbours down. The poisoned cell answers
/// with an error line, is never persisted (so a later fixed engine gets
/// to retry it), and the batch reports errors — the CLI's exit-1.
#[test]
fn a_panicking_cell_is_isolated_and_the_rest_of_the_batch_answers() {
    let batch = concat!(
        r#"{"id":"before","base":"pynamic-25","ranks":[256]}"#,
        "\n",
        r#"{"id":"boom","base":"poison","ranks":[256]}"#,
        "\n",
        r#"{"id":"after","base":"pynamic-25","ranks":[256],"fault":"stall-0-5000000000"}"#,
        "\n",
    );
    let dir = temp_dir("poison");
    {
        let store = ResultStore::open(&dir).unwrap();
        let report = serve_batch(batch, &store, &ProfileCache::new(), 2).unwrap();
        assert!(report.had_errors(), "the panic marks the batch");
        assert_eq!(report.queries.len(), 3, "every query answered");
        assert!(report.queries[0].answers[0].contains("launch_ns"));
        assert!(report.queries[1].answers[0].contains("panic in profiling"));
        assert_eq!(report.queries[1].stats.panics, 1);
        assert!(
            report.queries[2].answers[0].contains("launch_ns"),
            "queries after the poisoned one still simulate: {:?}",
            report.queries[2].answers
        );
        assert_eq!(store.len(), 2, "healthy cells persisted; the poisoned one never");
    }
    // Across reload the poisoned cell is still a miss — it re-attempts
    // (and re-panics today; a fixed engine would heal it) while the
    // healthy cells replay warm.
    let store = ResultStore::open(&dir).unwrap();
    let report = serve_batch(batch, &store, &ProfileCache::new(), 2).unwrap();
    assert!(report.had_errors());
    assert_eq!(report.queries[0].stats.warm_hits, 1);
    assert_eq!(report.queries[1].stats.panics, 1);
    assert_eq!(report.queries[2].stats.warm_hits, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The fault axis rides the same warm/cold machinery: faulted cells key,
/// persist, and replay warm like any other cell, and a faulted replay is
/// byte-identical to its cold run.
#[test]
fn faulted_cells_persist_and_replay_warm() {
    let m = || {
        matrix().faults([
            FaultModel::None,
            FaultModel::RpcLoss {
                loss_milli: 100,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
        ])
    };
    let dir = temp_dir("faulted");
    let cold = {
        let store = ResultStore::open(&dir).unwrap();
        let (report, stats) =
            run_matrix_incremental(&m(), &store, &ProfileCache::new(), 2).unwrap();
        assert_eq!(stats.cold_cells, stats.cells_total);
        report
    };
    let store = ResultStore::open(&dir).unwrap();
    let (warm, stats) = run_matrix_incremental(&m(), &store, &ProfileCache::new(), 2).unwrap();
    assert_eq!(stats.cold_cells, 0, "every faulted cell replays warm");
    assert_eq!(warm.results, cold.results, "bit-identical through the disk");
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Fig 3: the two-directory layout no search-path ordering can solve —
//! and its resolution by per-dependency absolute paths.

use depchaos::prelude::*;
use depchaos_workloads::paradox;

#[test]
fn exhaustive_orderings_all_fail() {
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    assert!(!paradox::any_ordering_correct(&fs));
}

#[test]
fn shrinkwrap_style_needed_entries_solve_it() {
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    ElfEditor::open(&fs, paradox::EXE)
        .unwrap()
        .set_needed(vec![
            format!("{}/liba.so", paradox::DIR_A),
            format!("{}/libb.so", paradox::DIR_B),
        ])
        .unwrap();
    let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(paradox::EXE).unwrap();
    assert!(r.success());
    assert!(paradox::is_correct(&r));
}

#[test]
fn a_new_directory_of_symlinks_also_solves_it() {
    // The paper's only in-band fix: "creating a new directory with the
    // correct versions" — which is what dependency views automate.
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    fs.mkdir_p("/opt/view").unwrap();
    fs.symlink("/opt/view/liba.so", &format!("{}/liba.so", paradox::DIR_A)).unwrap();
    fs.symlink("/opt/view/libb.so", &format!("{}/libb.so", paradox::DIR_B)).unwrap();
    ElfEditor::open(&fs, paradox::EXE).unwrap().set_runpath(vec!["/opt/view".to_string()]).unwrap();
    let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(paradox::EXE).unwrap();
    assert!(r.success());
    // Canonical targets are the wanted pair.
    assert_eq!(
        fs.canonicalize(&r.find("liba.so").unwrap().path).unwrap(),
        format!("{}/liba.so", paradox::DIR_A)
    );
    assert_eq!(
        fs.canonicalize(&r.find("libb.so").unwrap().path).unwrap(),
        format!("{}/libb.so", paradox::DIR_B)
    );
}

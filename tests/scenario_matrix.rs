//! The scenario-matrix engine, cross-crate: profile-cache determinism as a
//! property, and the cross-backend Fig 6 divergence/convergence claims.

use depchaos_launch::{
    CachePolicy, ExperimentMatrix, LaunchConfig, MatrixBackend, ProfileCache, WrapState,
};
use depchaos_vfs::StorageModel;
use depchaos_workloads::{Emacs, Pynamic, PynamicRpath, Workload};
use proptest::prelude::*;

fn backend_of(idx: usize) -> MatrixBackend {
    let mut all = MatrixBackend::all();
    all.remove(idx % all.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Profiling is deterministic: asking the cache for the same cell again
    /// returns the very same memoized profile, and an independent cache
    /// profiling the same cell from scratch produces a byte-identical
    /// strace log — whatever the workload scale, backend, or storage model.
    #[test]
    fn profile_cache_repeats_are_byte_identical(
        n_libs in 5usize..30,
        backend_idx in 0usize..4,
        storage_idx in 0usize..3,
    ) {
        let workload = Pynamic::new(n_libs);
        let backend = backend_of(backend_idx);
        let storage = StorageModel::all()[storage_idx];

        let cache = ProfileCache::new();
        let first = cache.get_or_profile(&workload, &backend, storage);
        let again = cache.get_or_profile(&workload, &backend, storage);
        prop_assert!(std::sync::Arc::ptr_eq(&first, &again), "repeat hit is memoized");
        prop_assert_eq!(cache.computed(), 1);

        let fresh = ProfileCache::new().get_or_profile(&workload, &backend, storage);
        for wrap in WrapState::all() {
            match (first.outcome(wrap), fresh.outcome(wrap)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.log.entries, &b.log.entries, "op streams identical");
                    prop_assert_eq!(a.stat_openat, b.stat_openat);
                    prop_assert_eq!(a.complete, b.complete);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b, "even failures reproduce"),
                (a, b) => prop_assert!(false, "outcomes diverge: {:?} vs {:?}", a, b),
            }
        }
    }
}

/// glibc consults RPATH before the environment; musl consults the
/// environment first. On the RPATH-variant Pynamic (per-directory RPATH
/// plus a flat `LD_LIBRARY_PATH` staging dir) the two backends' plain
/// Fig 6 series must therefore diverge — and converge again once the
/// binary is wrapped search-free.
#[test]
fn musl_and_glibc_series_diverge_plain_and_converge_wrapped() {
    let cache = ProfileCache::new();
    let report = ExperimentMatrix::new()
        .workload(PynamicRpath::new(60))
        .backends([MatrixBackend::glibc(), MatrixBackend::musl()])
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .rank_points([512usize, 2048])
        .base_config(LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        })
        .run(&cache);
    assert_eq!(report.cells_profiled, 2, "one cell per backend");

    let get = |backend: &str, wrap: WrapState| {
        let found = report.find(|s| s.backend == backend && s.wrap == wrap);
        (*found.first().unwrap_or_else(|| panic!("{backend}/{wrap:?} in report"))).clone()
    };
    let g_plain = get("glibc", WrapState::Plain);
    let m_plain = get("musl", WrapState::Plain);
    let g_wrapped = get("glibc", WrapState::Wrapped);
    let m_wrapped = get("musl", WrapState::Wrapped);
    for r in [&g_plain, &m_plain, &g_wrapped, &m_wrapped] {
        assert!(r.complete, "{}: {:?}", r.spec.label(), r.error);
    }

    // Plain: glibc pays the quadratic RPATH scan, musl goes flat via the
    // environment — different op streams, visibly different launch times.
    assert!(g_plain.stat_openat > 3 * m_plain.stat_openat);
    for &ranks in &report.rank_points {
        let g = g_plain.seconds_at(ranks).unwrap();
        let m = m_plain.seconds_at(ranks).unwrap();
        assert!(g > 1.5 * m, "plain series diverge at {ranks} ranks: glibc {g:.1}s musl {m:.1}s");
    }

    // Wrapped: both load a search-free absolute-path image — the series
    // converge (within noise of identical op streams).
    for &ranks in &report.rank_points {
        let g = g_wrapped.seconds_at(ranks).unwrap();
        let m = m_wrapped.seconds_at(ranks).unwrap();
        let ratio = g / m;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "wrapped series converge at {ranks} ranks: glibc {g:.2}s musl {m:.2}s"
        );
    }
}

/// The full four-backend sweep the `fig6-backends` report section renders:
/// every backend gets a row, holes are data, and the hash-store service's
/// plain series sits near wrapped-glibc (one probe per request).
#[test]
fn four_backend_sweep_is_complete_and_cells_are_shared() {
    let cache = ProfileCache::new();
    let matrix = ExperimentMatrix::new()
        .workload(Pynamic::new(50))
        .backends(MatrixBackend::all())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .rank_points([512usize])
        .base_config(LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        });
    let report = matrix.run(&cache);
    assert_eq!(report.results.len(), 8, "4 backends × 2 wrap states");
    assert_eq!(report.cells_profiled, 4);

    let get = |backend: &str, wrap: WrapState| {
        (*report.find(|s| s.backend == backend && s.wrap == wrap).first().unwrap()).clone()
    };
    // glibc and musl resolve the RUNPATH world; the future loader cannot.
    assert!(get("glibc", WrapState::Plain).complete);
    assert!(get("musl", WrapState::Plain).complete);
    assert!(!get("future", WrapState::Plain).complete);
    assert!(get("future", WrapState::Wrapped).error.is_some(), "future cannot wrap it either");

    // Hash-store: one probe per request — already near the wrapped glibc
    // line while plain.
    let hs_plain = get("hash-store", WrapState::Plain);
    let g_wrapped = get("glibc", WrapState::Wrapped);
    assert!(hs_plain.complete);
    let hs = hs_plain.seconds_at(512).unwrap();
    let gw = g_wrapped.seconds_at(512).unwrap();
    assert!(hs < 2.0 * gw, "hash-store plain ({hs:.1}s) near wrapped glibc ({gw:.1}s)");

    // Re-running the sweep against the shared cache profiles nothing new.
    assert_eq!(matrix.run(&cache).cells_profiled, 0);

    // And the renderer covers every backend slice.
    let tables = report.render_fig6_tables();
    for b in ["glibc", "musl", "future", "hash-store"] {
        assert!(tables.contains(&format!("× {b} ")), "missing {b} table:\n{tables}");
    }
}

/// Workload axis: emacs (Table II) rides the same engine unchanged.
#[test]
fn emacs_is_a_first_class_matrix_workload() {
    let cache = ProfileCache::new();
    let report = ExperimentMatrix::new()
        .workload(Emacs)
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Local)
        .rank_points([512usize])
        .run(&cache);
    let plain = (*report.find(|s| s.wrap == WrapState::Plain).first().unwrap()).clone();
    let wrapped = (*report.find(|s| s.wrap == WrapState::Wrapped).first().unwrap()).clone();
    assert!(plain.complete && wrapped.complete);
    // The Table II band, straight out of the matrix.
    assert!((1000..3600).contains(&plain.stat_openat), "{}", plain.stat_openat);
    assert!(wrapped.stat_openat < plain.stat_openat / 10);
    let _ = Emacs.name();
}

//! The server-topology axis never perturbs what it doesn't model.
//!
//! Three contracts pin the multi-server refactor:
//!
//! 1. **S = 1 is the old engine, bit for bit.** A one-server topology —
//!    under either assignment policy — must reproduce the default-config
//!    result exactly, across every (distribution × fault × stream shape)
//!    cell. The refactor threaded `ServerTopology` through every regime;
//!    this is the proof no single-server cell moved.
//! 2. **The S-lane engines agree.** The coalescing heap, the reference
//!    oracle, and the columnar [`BatchPlan`] must emit identical
//!    [`LaunchResult`]s for S ∈ {2, 3, 8} fleets under both routing
//!    policies, faults included.
//! 3. **Hash routing is schedule-independent.** `HashByNode` assigns by
//!    node id alone, so the fleet decomposes into independent lanes: the
//!    whole launch finishes exactly when a single-server system loaded
//!    with the busiest lane's ⌈N/S⌉ nodes would. If assignment leaked any
//!    arrival-order state, the lane populations — and this equality —
//!    would drift.

use depchaos::launch::{
    reference::simulate_launch_reference, simulate_classified, simulate_launch, AssignPolicy,
    BatchPlan, ClassifiedStream, FaultModel, LaunchConfig, ServerTopology, ServiceDistribution,
};
use depchaos::vfs::{Op, Outcome, StraceLog, Syscall};
use proptest::prelude::*;

/// The distribution axis a selector index names in the properties below.
fn dist_of(sel: u8) -> ServiceDistribution {
    ServiceDistribution::all()[sel as usize % 3]
}

/// The fault axis: healthy, a brownout inside the contention window,
/// lossy RPC with retry/backoff, and a straggler cohort.
fn fault_of(sel: u8) -> FaultModel {
    [
        FaultModel::None,
        FaultModel::ServerStall { at_ns: 2_000_000, duration_ns: 300_000_000 },
        FaultModel::RpcLoss {
            loss_milli: 150,
            timeout_ns: 1_000_000,
            backoff_base_ns: 250_000,
            max_retries: 5,
        },
        FaultModel::Stragglers { frac_milli: 250, slow_milli: 4000 },
    ][sel as usize % 4]
}

/// Build a stream from `(kind, cost)` pairs, same shape space as the
/// des_equivalence suite: everything from sub-warm to payload-heavy.
fn stream_of(spec: &[(u8, u64)]) -> StraceLog {
    let mut log = StraceLog::new();
    for (i, &(kind, cost_ns)) in spec.iter().enumerate() {
        let (op, outcome) = match kind % 4 {
            0 => (Op::Stat, Outcome::Ok),
            1 => (Op::Openat, Outcome::Enoent),
            2 => (Op::Read, Outcome::Ok),
            _ => (Op::Readlink, Outcome::Ok),
        };
        log.push(Syscall::new(op, &format!("/p/{i}"), outcome, cost_ns));
    }
    log
}

/// The fleet shapes contract 2 sweeps: both policies, lane counts that
/// divide the node population evenly, unevenly, and not at all.
fn fleets() -> [ServerTopology; 6] {
    [
        ServerTopology::hash(2),
        ServerTopology::hash(3),
        ServerTopology::hash(8),
        ServerTopology::least_loaded(2),
        ServerTopology::least_loaded(3),
        ServerTopology::least_loaded(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: one server is the pre-topology engine, whatever the
    /// policy tag says, over the full (dist × fault × knobs) input space.
    #[test]
    fn single_server_topologies_are_bit_identical_to_the_default(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 0..100),
        ranks in 1usize..5000,
        rpn_sel in 0usize..4,
        knobs in 0u8..8,
        dist_sel in 0u8..3,
        fault_sel in 0u8..4,
        seed in any::<u64>(),
    ) {
        let ops = stream_of(&spec);
        let base = LaunchConfig {
            ranks,
            ranks_per_node: [1, 16, 128, 997][rpn_sel],
            broadcast_cache: knobs & 1 != 0,
            base_overhead_ns: if knobs & 2 != 0 { 25_000_000_000 } else { 0 },
            per_rank_overhead_ns: if knobs & 4 != 0 { 10_000_000 } else { 0 },
            service_dist: dist_of(dist_sel),
            fault: fault_of(fault_sel),
            seed,
            ..LaunchConfig::default()
        };
        let want = simulate_launch(&ops, &base);
        for assign in [AssignPolicy::HashByNode, AssignPolicy::LeastLoaded] {
            let cfg = LaunchConfig {
                topology: ServerTopology { servers: 1, assign },
                ..base.clone()
            };
            prop_assert_eq!(&simulate_launch(&ops, &cfg), &want, "assign={}", assign.name());
        }
    }

    /// Contract 2: heap == reference == batch for genuine fleets, both
    /// policies, faults and stochastic service included. The batch row
    /// rides a plan that also carries a single-server row, so kernel
    /// dedup cannot conflate topologies either.
    #[test]
    fn fleet_heap_matches_reference_and_batch(
        spec in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..80),
        ranks in 1usize..4000,
        fleet_sel in 0usize..6,
        dist_sel in 0u8..3,
        fault_sel in 0u8..4,
        seed in any::<u64>(),
    ) {
        let ops = stream_of(&spec);
        let cfg = LaunchConfig {
            ranks,
            ranks_per_node: 16,
            service_dist: dist_of(dist_sel),
            fault: fault_of(fault_sel),
            topology: fleets()[fleet_sel],
            seed,
            ..LaunchConfig::default()
        };
        let classified = ClassifiedStream::classify(&ops, &cfg);
        let fast = simulate_classified(&classified, &cfg);
        prop_assert_eq!(&fast, &simulate_launch_reference(&ops, &cfg));

        let single = LaunchConfig { topology: ServerTopology::single(), ..cfg.clone() };
        let mut plan = BatchPlan::new();
        let id = plan.stream(&classified);
        plan.push(id, &cfg);
        plan.push(id, &single);
        let rows = plan.execute();
        prop_assert_eq!(&rows[0], &fast);
        prop_assert_eq!(&rows[1], &simulate_classified(&classified, &single));
    }

    /// Contract 3: `HashByNode` assigns by node id alone, so the fleet's
    /// launch time equals a single server loaded with the busiest lane's
    /// ⌈N/S⌉ nodes. Draw-free cells only: per-node draws are seeded by
    /// global node id, which the lane reduction deliberately renumbers.
    #[test]
    fn hash_routing_decomposes_into_independent_lanes(
        spec in prop::collection::vec((0u8..4, 0u64..1_000_000), 1..80),
        nodes in 1usize..250,
        servers_sel in 0usize..3,
        stall in any::<bool>(),
    ) {
        let ops = stream_of(&spec);
        let servers = [2usize, 3, 8][servers_sel];
        let fault = if stall {
            FaultModel::ServerStall { at_ns: 2_000_000, duration_ns: 300_000_000 }
        } else {
            FaultModel::None
        };
        let fleet_cfg = LaunchConfig {
            ranks: nodes * 16,
            ranks_per_node: 16,
            fault,
            topology: ServerTopology::hash(servers),
            ..LaunchConfig::default()
        };
        let lane_cfg = LaunchConfig {
            ranks: nodes.div_ceil(servers) * 16,
            topology: ServerTopology::single(),
            ..fleet_cfg.clone()
        };
        prop_assert_eq!(
            simulate_launch(&ops, &fleet_cfg).time_to_launch_ns,
            simulate_launch(&ops, &lane_cfg).time_to_launch_ns,
            "an S={servers} hash fleet must finish exactly when its busiest lane does"
        );
    }
}

//! The service-distribution axis, end to end: seeded determinism of whole
//! `SweepReport`s, cross-seed statistical sanity, and the new Axom/ROCm
//! workloads riding the matrix.
//!
//! The reproducibility contract under test: a stochastic sweep is a pure
//! function of `(matrix, base seed)` — every cell's draws derive from
//! `scenario_seed(base, label)` and every replicate from
//! `replicate_seed(cell seed, r)`, so re-running the same matrix yields a
//! byte-identical report, while changing the base seed moves every sample
//! without moving the distributions they come from.

use depchaos_launch::{
    CachePolicy, ExperimentMatrix, LaunchConfig, MatrixBackend, ProfileCache, ServiceDistribution,
    SweepReport, WrapState,
};
use depchaos_vfs::StorageModel;
use depchaos_workloads::{Axom, Pynamic, Rocm};

fn dist_matrix(seed: u64) -> ExperimentMatrix {
    ExperimentMatrix::new()
        .workload(Pynamic::new(60))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .distributions([
            ServiceDistribution::uniform_jitter(0.25),
            ServiceDistribution::log_normal(0.5),
        ])
        .replicates(15)
        .rank_points([512usize, 2048])
        .base_config(LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            seed,
            ..LaunchConfig::default()
        })
}

fn run(seed: u64) -> SweepReport {
    dist_matrix(seed).run(&ProfileCache::new())
}

#[test]
fn same_seed_yields_byte_identical_reports() {
    let a = run(42);
    let b = run(42);
    // Structural equality covers every series entry and every percentile...
    assert_eq!(a, b);
    // ...and the rendered artifacts are byte-identical too (what the CI
    // TSV uploads actually persist).
    assert_eq!(a.render_tsv(), b.render_tsv());
    assert_eq!(a.render_fig6_dist_tables(), b.render_fig6_dist_tables());
}

#[test]
fn different_seeds_move_samples_not_distributions() {
    let a = run(42);
    let b = run(1337);
    assert_ne!(a, b, "independent seeds cannot tie across 15 replicates");
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.spec, rb.spec, "same matrix, same scenario order");
        for ((ranks, sa), (_, sb)) in ra.stats.iter().zip(&rb.stats) {
            // Ordered percentiles whatever the seed.
            assert!(sa.p50_ns <= sa.p95_ns && sa.p95_ns <= sa.p99_ns);
            assert!(sb.p50_ns <= sb.p95_ns && sb.p95_ns <= sb.p99_ns);
            // p50 is an estimator of the same underlying distribution: two
            // 15-replicate samples must land within a loose band (jitter
            // and the σ=0.5 log-normal both keep the median tight here —
            // service time is only one component of the launch).
            let (lo, hi) = (sa.p50_ns.min(sb.p50_ns), sa.p50_ns.max(sb.p50_ns));
            assert!(
                (hi - lo) as f64 / (hi as f64) < 0.10,
                "{} at {ranks}: p50 {lo} vs {hi} differ by more than 10%",
                ra.spec.label()
            );
        }
    }
}

#[test]
fn axom_and_rocm_ride_the_full_matrix_with_distributions() {
    let cache = ProfileCache::new();
    let report = ExperimentMatrix::new()
        .workload(Axom::paper())
        .workload(Rocm::matched())
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .distributions(ServiceDistribution::all())
        .replicates(5)
        .rank_points([512usize, 2048])
        .base_config(LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        })
        .run(&cache);
    // 2 workloads × 2 wraps × 3 distributions; 2 profile cells.
    assert_eq!(report.results.len(), 12);
    assert_eq!(report.cells_profiled, 2);

    for r in &report.results {
        assert!(r.complete, "{}: {:?}", r.spec.label(), r.error);
        assert!(r.error.is_none());
        assert!(!r.series.is_empty() && !r.stats.is_empty());
    }

    // The two shapes differ qualitatively. Axom's Spack RUNPATH stack pays
    // a real search storm, so wrapping must win. Matched ROCm resolves
    // everything on the first LD_LIBRARY_PATH probe (its §V-B pathology is
    // *correctness*, not search cost) — wrapping can only hold the line.
    for dist in ServiceDistribution::all() {
        let get = |workload: &str, wrap| {
            *report
                .find(|s| s.workload == workload && s.wrap == wrap && s.dist == dist)
                .first()
                .unwrap_or_else(|| panic!("{workload}/{dist:?}/{wrap:?} in report"))
        };
        let axom_plain = get("axom-7", WrapState::Plain);
        let axom_wrapped = get("axom-7", WrapState::Wrapped);
        assert!(
            axom_plain.stat_openat > 3 * axom_wrapped.stat_openat,
            "wrap prunes the store search"
        );
        assert!(
            axom_wrapped.seconds_at(2048).unwrap() < axom_plain.seconds_at(2048).unwrap(),
            "axom under {}: wrapped launches faster",
            dist.name()
        );
        let rocm_plain = get("rocm-4.5", WrapState::Plain);
        let rocm_wrapped = get("rocm-4.5", WrapState::Wrapped);
        assert!(rocm_wrapped.stat_openat <= rocm_plain.stat_openat);
        // Near-identical streams, but plain and wrapped are distinct cells
        // and so draw from decorrelated seed streams: under jitter the
        // comparison only holds to within the draw noise.
        assert!(
            rocm_wrapped.seconds_at(2048).unwrap() <= rocm_plain.seconds_at(2048).unwrap() * 1.05,
            "wrapping a search-free world must not cost anything real ({})",
            dist.name()
        );
    }

    // And the dist renderer covers both workloads with bands.
    let tables = report.render_fig6_dist_tables();
    assert!(tables.contains("axom-7 × glibc"));
    assert!(tables.contains("rocm-4.5 × glibc"));
    assert!(tables.contains("lognormal-500 p50/p99(s)"));
}

#[test]
fn deterministic_scenarios_never_replicate() {
    let report = ExperimentMatrix::new()
        .workload(Pynamic::new(20))
        .distributions([ServiceDistribution::Deterministic])
        .replicates(40)
        .rank_points([512usize])
        .run(&ProfileCache::new());
    for r in &report.results {
        for (_, st) in &r.stats {
            assert_eq!(st.replicates, 1, "deterministic cells collapse to one run");
            assert_eq!(st.p50_ns, st.p99_ns);
        }
    }
}

//! Fig 6 end-to-end at test scale: profile → simulate → compare.
//!
//! The full 900-library figure runs in the bench harness; here a reduced
//! instance checks every stage of the pipeline and the qualitative claims.

use depchaos::prelude::*;
use depchaos_workloads::pynamic;

const N_LIBS: usize = 120;

fn profiles() -> (depchaos_vfs::StraceLog, depchaos_vfs::StraceLog) {
    let fs = Vfs::nfs();
    let w = pynamic::install(&fs, "/apps/pynamic", N_LIBS).unwrap();
    let env = Environment::bare();
    let normal = profile_load(&fs, &w.exe_path, &env).unwrap();
    depchaos_core::wrap(&fs, &w.exe_path, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let wrapped = profile_load(&fs, &w.exe_path, &env).unwrap();
    (normal, wrapped)
}

#[test]
fn wrapped_op_stream_is_linear_not_quadratic() {
    let (normal, wrapped) = profiles();
    let quadratic = N_LIBS * (N_LIBS + 1) / 2;
    assert!(normal.stat_openat() >= quadratic, "unwrapped search is quadratic");
    assert!(
        wrapped.stat_openat() <= N_LIBS + 2,
        "wrapped is one open per dependency: {}",
        wrapped.stat_openat()
    );
}

#[test]
fn speedup_grows_with_scale_and_wrapped_wins_everywhere() {
    let (normal, wrapped) = profiles();
    // Strip the fixed overheads to expose the loader-bound behaviour.
    let cfg =
        LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..LaunchConfig::default() };
    let points = [512usize, 1024, 2048];
    let n = sweep_ranks(&normal, &cfg, &points);
    let w = sweep_ranks(&wrapped, &cfg, &points);
    let mut last_speedup = 0.0;
    for (i, &p) in points.iter().enumerate() {
        let tn = n[i].1.time_to_launch_ns as f64;
        let tw = w[i].1.time_to_launch_ns as f64;
        assert_eq!(n[i].0, p);
        let speedup = tn / tw;
        assert!(speedup > 1.5, "wrapped must win at {p} ranks: {speedup:.2}");
        assert!(speedup >= last_speedup * 0.95, "gap widens (roughly) with scale");
        last_speedup = speedup;
    }
}

#[test]
fn server_op_accounting_consistent() {
    let (normal, wrapped) = profiles();
    let cfg = LaunchConfig::default().with_ranks(512); // 4 nodes
    let rn = simulate_launch(&normal, &cfg);
    let rw = simulate_launch(&wrapped, &cfg);
    assert_eq!(rn.nodes, 4);
    // Every cold op in the profile is paid once per node.
    assert!(rn.server_ops >= 4 * (N_LIBS * (N_LIBS + 1) / 2) as u64);
    assert!(rw.server_ops < rn.server_ops / 10);
    // Contention shows up as queue depth at scale.
    assert!(rn.peak_queue_depth >= 2);
}

#[test]
fn negative_caching_ablation() {
    // Negative caching pays off on *repeated* launches: the second load's
    // failed probes are client-cached when it is enabled. LLNL disables it,
    // so every launch repays the full miss storm — which is why the paper
    // measures with it off.
    let env = Environment::bare();
    let second_load_ns = |backend: Backend| {
        let fs = Vfs::new(backend);
        let w = pynamic::install(&fs, "/apps/p", N_LIBS).unwrap();
        profile_load(&fs, &w.exe_path, &env).unwrap(); // cold first load
                                                       // Second load without dropping caches.
        let t0 = fs.elapsed_ns();
        GlibcLoader::new(&fs).with_env(env.clone()).load(&w.exe_path).unwrap();
        fs.elapsed_ns() - t0
    };
    let off = second_load_ns(Backend::nfs());
    let on = second_load_ns(Backend::nfs_with_negative_caching());
    assert!(off > on * 5, "with negative caching off, relaunch repays the misses: {off} vs {on}");
}

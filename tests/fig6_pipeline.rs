//! Fig 6 end-to-end at test scale: one scenario-matrix run drives the
//! whole profile → simulate → compare pipeline.
//!
//! The full 900-library figure runs in the bench harness; here a reduced
//! instance checks every stage of the engine and the qualitative claims.

use depchaos::prelude::*;
use depchaos_launch::{CachePolicy, ExperimentMatrix, MatrixBackend, ProfileCache, WrapState};
use depchaos_vfs::StorageModel;
use depchaos_workloads::{pynamic, Pynamic};

const N_LIBS: usize = 120;

/// The paper's cell of the design space, fixed overheads stripped to
/// expose the loader-bound behaviour.
fn report() -> depchaos_launch::SweepReport {
    ExperimentMatrix::new()
        .workload(Pynamic::new(N_LIBS))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .rank_points([512usize, 1024, 2048])
        .base_config(LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        })
        .run(&ProfileCache::new())
}

fn pick(report: &depchaos_launch::SweepReport, wrap: WrapState) -> depchaos_launch::ScenarioResult {
    report.one(wrap, CachePolicy::Cold).expect("scenario in matrix").clone()
}

#[test]
fn wrapped_op_stream_is_linear_not_quadratic() {
    let report = report();
    let normal = pick(&report, WrapState::Plain);
    let wrapped = pick(&report, WrapState::Wrapped);
    let quadratic = N_LIBS * (N_LIBS + 1) / 2;
    assert!(normal.stat_openat >= quadratic, "unwrapped search is quadratic");
    assert!(
        wrapped.stat_openat <= N_LIBS + 2,
        "wrapped is one open per dependency: {}",
        wrapped.stat_openat
    );
}

#[test]
fn speedup_grows_with_scale_and_wrapped_wins_everywhere() {
    let report = report();
    let normal = pick(&report, WrapState::Plain);
    let wrapped = pick(&report, WrapState::Wrapped);
    let mut last_speedup = 0.0;
    for &p in &report.rank_points {
        let tn = normal.seconds_at(p).unwrap();
        let tw = wrapped.seconds_at(p).unwrap();
        let speedup = tn / tw;
        assert!(speedup > 1.5, "wrapped must win at {p} ranks: {speedup:.2}");
        assert!(speedup >= last_speedup * 0.95, "gap widens (roughly) with scale");
        last_speedup = speedup;
    }
}

#[test]
fn server_op_accounting_consistent() {
    let report = report();
    let normal = pick(&report, WrapState::Plain);
    let wrapped = pick(&report, WrapState::Wrapped);
    let rn = *normal.result_at(512).unwrap(); // 4 nodes
    let rw = *wrapped.result_at(512).unwrap();
    assert_eq!(rn.nodes, 4);
    // Every cold op in the profile is paid once per node.
    assert!(rn.server_ops >= 4 * (N_LIBS * (N_LIBS + 1) / 2) as u64);
    assert!(rw.server_ops < rn.server_ops / 10);
    // Contention shows up as queue depth at scale.
    assert!(rn.peak_queue_depth >= 2);
}

#[test]
fn negative_caching_ablation() {
    // Negative caching pays off on *repeated* launches: the second load's
    // failed probes are client-cached when it is enabled. LLNL disables it,
    // so every launch repays the full miss storm — which is why the paper
    // measures with it off. This is the storage-model axis of the matrix;
    // asserted here at the loader level where the second (undropped) load
    // is observable.
    let env = Environment::bare();
    let second_load_ns = |storage: StorageModel| {
        let fs = Vfs::new(storage.backend());
        let w = pynamic::install(&fs, "/apps/p", N_LIBS).unwrap();
        profile_load(&fs, &w.exe_path, &env).unwrap(); // cold first load
                                                       // Second load without dropping caches.
        let t0 = fs.elapsed_ns();
        GlibcLoader::new(&fs).with_env(env.clone()).load(&w.exe_path).unwrap();
        fs.elapsed_ns() - t0
    };
    let off = second_load_ns(StorageModel::Nfs);
    let on = second_load_ns(StorageModel::NfsNegativeCaching);
    assert!(off > on * 5, "with negative caching off, relaunch repays the misses: {off} vs {on}");
}

#[test]
fn matrix_profiles_each_cell_exactly_once() {
    let cache = ProfileCache::new();
    let report = ExperimentMatrix::new()
        .workload(Pynamic::new(40))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies(CachePolicy::all())
        .rank_points([512usize])
        .run(&cache);
    assert_eq!(report.results.len(), 4, "2 wrap states × 2 cache policies");
    assert_eq!(report.cells_profiled, 1, "all four share one profile cell");
    // A second matrix over the same cell reuses the shared cache entirely.
    let again = ExperimentMatrix::new()
        .workload(Pynamic::new(40))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .rank_points([1024usize])
        .run(&cache);
    assert_eq!(again.cells_profiled, 0);
}

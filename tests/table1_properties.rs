//! Table I: Properties of RPATH and RUNPATH — each cell proven against the
//! glibc loader model.
//!
//! | Property                 | RPATH | RUNPATH |
//! |--------------------------|-------|---------|
//! | Before LD_LIBRARY_PATH   | Yes   | No      |
//! | After LD_LIBRARY_PATH    | No    | Yes     |
//! | Propagates               | Yes   | No      |

use depchaos::prelude::*;
use depchaos_elf::io::install;

/// Two copies of libx.so: one reachable via the binary's embedded path,
/// one via LD_LIBRARY_PATH. Which wins answers rows 1 and 2.
fn embedded_vs_env(use_rpath: bool) -> String {
    let fs = Vfs::local();
    install(&fs, "/emb/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    install(&fs, "/env/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    let exe = if use_rpath {
        ElfObject::exe("app").needs("libx.so").rpath("/emb").build()
    } else {
        ElfObject::exe("app").needs("libx.so").runpath("/emb").build()
    };
    install(&fs, "/bin/app", &exe).unwrap();
    let env = Environment::bare().with_ld_library_path("/env");
    let r = GlibcLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
    r.objects[1].path.clone()
}

#[test]
fn row1_rpath_searched_before_ld_library_path() {
    assert_eq!(embedded_vs_env(true), "/emb/libx.so");
}

#[test]
fn row2_runpath_searched_after_ld_library_path() {
    assert_eq!(embedded_vs_env(false), "/env/libx.so");
}

/// The embedded path names a directory holding a *transitive* dependency:
/// only a propagating mechanism lets the child library find it.
fn propagation(use_rpath: bool) -> bool {
    let fs = Vfs::local();
    install(&fs, "/libs/libmid.so", &ElfObject::dso("libmid.so").needs("libleaf.so").build())
        .unwrap();
    install(&fs, "/deep/libleaf.so", &ElfObject::dso("libleaf.so").build()).unwrap();
    let exe = if use_rpath {
        ElfObject::exe("app").needs("libmid.so").rpath("/libs").rpath("/deep").build()
    } else {
        ElfObject::exe("app").needs("libmid.so").runpath("/libs").runpath("/deep").build()
    };
    install(&fs, "/bin/app", &exe).unwrap();
    let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
    r.success()
}

#[test]
fn row3_rpath_propagates_to_dependencies() {
    assert!(propagation(true));
}

#[test]
fn row3_runpath_does_not_propagate() {
    assert!(!propagation(false));
}

/// Bonus row from §III-A: RPATH is ignored entirely when the same object
/// also carries RUNPATH.
#[test]
fn rpath_ignored_when_runpath_present() {
    let fs = Vfs::local();
    install(&fs, "/rp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    install(&fs, "/runp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    let exe = ElfObject::exe("app").needs("libx.so").rpath("/rp").runpath("/runp").build();
    install(&fs, "/bin/app", &exe).unwrap();
    let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
    assert_eq!(r.objects[1].path, "/runp/libx.so");
}

/// musl does not implement Table I: both attributes behave the same there
/// (inherited, searched after LD_LIBRARY_PATH).
#[test]
fn musl_breaks_all_three_rows() {
    // Row 1 analogue: RPATH loses to LD_LIBRARY_PATH under musl.
    let fs = Vfs::local();
    install(&fs, "/emb/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    install(&fs, "/env/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    install(&fs, "/bin/app", &ElfObject::exe("app").needs("libx.so").rpath("/emb").build())
        .unwrap();
    let env = Environment::bare().with_ld_library_path("/env");
    let r = MuslLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
    assert_eq!(r.objects[1].path, "/env/libx.so");

    // Row 3 analogue: RUNPATH *does* propagate under musl.
    let fs = Vfs::local();
    install(&fs, "/libs/libmid.so", &ElfObject::dso("libmid.so").needs("libleaf.so").build())
        .unwrap();
    install(&fs, "/deep/libleaf.so", &ElfObject::dso("libleaf.so").build()).unwrap();
    install(
        &fs,
        "/bin/app",
        &ElfObject::exe("app").needs("libmid.so").runpath("/libs").runpath("/deep").build(),
    )
    .unwrap();
    let r = MuslLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
    assert!(r.success());
}

//! §V-B.1: the ROCm mixed-version failure and the Shrinkwrap fix.

use depchaos::prelude::*;
use depchaos_workloads::rocm;

#[test]
fn shrinkwrap_fixes_the_mixed_version_load() {
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();

    // Wrap inside a consistent environment (the right module loaded) —
    // "given a built binary inside a consistent environment".
    let mut ms = rocm::module_system();
    ms.load("rocm/4.5.0").unwrap();
    let good_env = ms.environment(Environment::default());
    depchaos_core::wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(good_env)).unwrap();

    // Now run with the WRONG module loaded — the scenario that used to
    // segfault. The frozen binary ignores LD_LIBRARY_PATH entirely.
    let mut ms2 = rocm::module_system();
    ms2.load("rocm/4.3.0").unwrap();
    let bad_env = ms2.environment(Environment::default());
    let r = GlibcLoader::new(&fs).with_env(bad_env).load(rocm::APP).unwrap();
    assert!(r.success());
    assert_eq!(rocm::versions_loaded(&r), vec!["4.5.0"], "consistent set despite bad module");
}

#[test]
fn unwrapped_binary_still_mixes() {
    // Control: without wrapping, the same environment mixes versions.
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    let mut ms = rocm::module_system();
    ms.load("rocm/4.3.0").unwrap();
    let env = ms.environment(Environment::default());
    let r = GlibcLoader::new(&fs).with_env(env).load(rocm::APP).unwrap();
    assert_eq!(rocm::versions_loaded(&r).len(), 2, "the bug reproduces");
}

#[test]
fn wrapped_binary_is_auditable() {
    // "the initial load for all needed libraries is no longer environment
    // dependent and can be inspected in the build environment".
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    let mut ms = rocm::module_system();
    ms.load("rocm/4.5.0").unwrap();
    let env = ms.environment(Environment::default());
    let rep = depchaos_core::wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(env)).unwrap();
    assert!(rep.new_needed.iter().all(|p| p.starts_with("/opt/rocm-4.5.0")));
    let audit = depchaos_core::audit(&fs, rocm::APP, &Environment::default()).unwrap();
    assert!(audit.fully_frozen());
}

#[test]
fn admin_swap_pain_point() {
    // §III-A's administrator dilemma: with paths locked to rocm-4.5.0, an
    // administrator replacing it with a binary-compatible hotfix directory
    // must touch the binary (or symlink) — LD_LIBRARY_PATH no longer helps.
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    let mut ms = rocm::module_system();
    ms.load("rocm/4.5.0").unwrap();
    depchaos_core::wrap(
        &fs,
        rocm::APP,
        &ShrinkwrapOptions::new().env(ms.environment(Environment::default())),
    )
    .unwrap();

    // Install the "hotfix" version and point LD_LIBRARY_PATH at it: no
    // effect on the wrapped binary.
    rocm::install_rocm(&fs, "4.5.1").unwrap();
    let env = Environment::default().with_ld_library_path("/opt/rocm-4.5.1/lib");
    let r = GlibcLoader::new(&fs).with_env(env).load(rocm::APP).unwrap();
    assert_eq!(rocm::versions_loaded(&r), vec!["4.5.0"], "env override impossible");

    // Re-wrapping does NOT help either: the frozen absolute entries load
    // directly, so the resolution pass never consults the new module.
    let mut ms2 = rocm::module_system();
    ms2.provide(Module::new("rocm/4.5.1").ld_library_path("/opt/rocm-4.5.1/lib"));
    ms2.load("rocm/4.5.1").unwrap();
    let env451 = ms2.environment(Environment::default());
    depchaos_core::wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(env451.clone())).unwrap();
    let r2 = GlibcLoader::new(&fs).with_env(Environment::default()).load(rocm::APP).unwrap();
    assert_eq!(rocm::versions_loaded(&r2), vec!["4.5.0"], "absolute paths are truly frozen");

    // The paper's listed remedy: recompile (rebuild the binary) and wrap
    // again in the new environment.
    rocm::install_app(&fs, "4.5.1").unwrap();
    depchaos_core::wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(env451)).unwrap();
    let r3 = GlibcLoader::new(&fs).with_env(Environment::default()).load(rocm::APP).unwrap();
    assert_eq!(rocm::versions_loaded(&r3), vec!["4.5.1"]);
}

//! §III-B, "Questioning Dynamic Linking": what static linking buys and
//! breaks, measured.

use depchaos::prelude::*;
use depchaos_elf::io::install;

fn dynamic_world() -> Vfs {
    let fs = Vfs::local();
    let mut fhs = FhsInstaller::new();
    fhs.install(
        &fs,
        &PackageDef::new("glibc", "2.36")
            .lib(LibDef::new("libc.so.6"))
            .lib(LibDef::new("libm.so.6")),
    )
    .unwrap();
    install(
        &fs,
        "/usr/bin/dynamic_app",
        &ElfObject::exe("dynamic_app").needs("libc.so.6").needs("libm.so.6").build(),
    )
    .unwrap();
    // The static build: everything linked in; no interp, no needed list.
    let mut static_obj = ElfObject::exe("static_app").build();
    static_obj.interp = None;
    install(&fs, "/usr/bin/static_app", &static_obj).unwrap();
    fs
}

#[test]
fn static_startup_does_no_resolution_work() {
    let fs = dynamic_world();
    let dynamic = GlibcLoader::new(&fs).load("/usr/bin/dynamic_app").unwrap();
    let r#static = GlibcLoader::new(&fs).load("/usr/bin/static_app").unwrap();
    assert!(dynamic.success() && r#static.success());
    assert!(dynamic.stat_openat() > r#static.stat_openat());
    assert_eq!(r#static.library_count(), 0);
    assert_eq!(r#static.syscalls.misses, 0);
}

#[test]
fn static_linking_breaks_ld_preload_tools() {
    // "tools that use the PMPI interface are usually preloaded with
    // LD_PRELOAD ... Changing to fully static linking breaks all of these
    // tools, rendering them unusable."
    let fs = dynamic_world();
    install(
        &fs,
        "/tools/libmpiprof.so",
        &ElfObject::dso("libmpiprof.so").defines(Symbol::strong("MPI_Send")).build(),
    )
    .unwrap();
    let env = Environment::default().with_preload("/tools/libmpiprof.so");

    let dynamic = GlibcLoader::new(&fs).with_env(env.clone()).load("/usr/bin/dynamic_app").unwrap();
    assert!(dynamic.find("libmpiprof.so").is_some(), "tool interposes on the dynamic build");

    let r#static = GlibcLoader::new(&fs).with_env(env).load("/usr/bin/static_app").unwrap();
    assert!(r#static.find("libmpiprof.so").is_none(), "tool silently inert on the static build");
    assert!(r#static.bindings().is_empty());
}

#[test]
fn shrinkwrap_approaches_static_cost_with_dynamic_flexibility() {
    // The paper's implicit pitch: a shrinkwrapped binary pays close to the
    // static binary's startup cost while LD_PRELOAD keeps working.
    let fs = dynamic_world();
    depchaos_core::wrap(
        &fs,
        "/usr/bin/dynamic_app",
        &ShrinkwrapOptions::new().env(Environment::default()),
    )
    .unwrap();
    let wrapped = GlibcLoader::new(&fs).load("/usr/bin/dynamic_app").unwrap();
    let r#static = GlibcLoader::new(&fs).load("/usr/bin/static_app").unwrap();
    // Wrapped: 1 open for the exe + 1 per dependency, zero misses.
    assert_eq!(wrapped.syscalls.misses, 0);
    assert!(wrapped.stat_openat() <= r#static.stat_openat() + wrapped.library_count() as u64);
    // ...and the escape hatch still works.
    install(
        &fs,
        "/tools/libmpiprof.so",
        &ElfObject::dso("libmpiprof.so").defines(Symbol::strong("MPI_Send")).build(),
    )
    .unwrap();
    let env = Environment::default().with_preload("/tools/libmpiprof.so");
    let r = GlibcLoader::new(&fs).with_env(env).load("/usr/bin/dynamic_app").unwrap();
    assert!(r.find("libmpiprof.so").is_some());
}

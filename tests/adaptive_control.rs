//! Adaptive replicate control never changes what is simulated — only how
//! much of it.
//!
//! The stopping rule in [`depchaos::launch::adaptive`] decides *when* a
//! cell has enough replicates; it must never perturb the replicates
//! themselves. Two properties pin that, across random streams, all three
//! service distributions, and every fault-model shape:
//!
//! 1. **Degenerate rule ≡ fixed K, byte for byte.** With the precision
//!    target disabled (`target_rel_milli == 0`) the adaptive sweep runs
//!    every unit to `max_k` — and the result must equal
//!    [`sweep_ranks_replicated`] at K = `max_k` exactly: same samples,
//!    same stats, same replicate-0 series entry.
//! 2. **Batch-prefix property.** Whatever K the live rule stops at, the
//!    adaptive sample is a *prefix* of the fixed-`max_k` sample vector:
//!    replicate `r`'s draws are a pure function of `(base seed, r)`
//!    ([`replicate_seed`]), so reaching `r` adaptively or under fixed K
//!    produces the same launch result. `docs/determinism.md` walks
//!    through why this is the whole bit-reproducibility argument.

use depchaos::launch::{
    replicate_seed, stop_k, sweep_ranks_adaptive, sweep_ranks_replicated, AdaptiveControl,
    BatchPlan, ClassifiedStream, FaultModel, LaunchConfig, ServiceDistribution,
};
use depchaos::vfs::{Op, Outcome, StraceLog, Syscall};
use proptest::prelude::*;

/// The distribution axis a selector index names.
fn dist_of(sel: u8) -> ServiceDistribution {
    ServiceDistribution::all()[sel as usize % 3]
}

/// The fault axis: healthy, brownout, lossy RPC, stragglers.
fn fault_of(sel: u8) -> FaultModel {
    [
        FaultModel::None,
        FaultModel::ServerStall { at_ns: 2_000_000, duration_ns: 300_000_000 },
        FaultModel::RpcLoss {
            loss_milli: 150,
            timeout_ns: 1_000_000,
            backoff_base_ns: 250_000,
            max_retries: 5,
        },
        FaultModel::Stragglers { frac_milli: 250, slow_milli: 4000 },
    ][sel as usize % 4]
}

/// Build a stream from `(kind, cost)` pairs, as the DES equivalence
/// properties do.
fn stream_of(spec: &[(u8, u64)]) -> StraceLog {
    let mut log = StraceLog::new();
    for (i, &(kind, cost_ns)) in spec.iter().enumerate() {
        let (op, outcome) = match kind % 4 {
            0 => (Op::Stat, Outcome::Ok),
            1 => (Op::Openat, Outcome::Enoent),
            2 => (Op::Read, Outcome::Ok),
            _ => (Op::Readlink, Outcome::Ok),
        };
        log.push(Syscall::new(op, &format!("/p/{i}"), outcome, cost_ns));
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: adaptive-at-max_k is the fixed-K sweep, byte for byte,
    /// across distributions × fault models.
    #[test]
    fn disabled_rule_is_fixed_k_byte_for_byte(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 1..80),
        dist_sel in 0u8..3,
        fault_sel in 0u8..4,
        seed in 0u64..1 << 40,
        max_k in 1usize..9,
        batch in 1usize..5,
    ) {
        let cfg = LaunchConfig {
            service_dist: dist_of(dist_sel),
            fault: fault_of(fault_sel),
            seed,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&stream_of(&spec), &cfg);
        let pts = [256usize, 1024];
        let ctl = AdaptiveControl { target_rel_milli: 0, min_k: 1, max_k, batch };
        let adaptive = sweep_ranks_adaptive(&stream, &cfg, &pts, ctl);
        let fixed = sweep_ranks_replicated(&stream, &cfg, &pts, max_k);
        prop_assert_eq!(adaptive, fixed);
    }

    /// Property 2: under a *live* rule, every replicate the adaptive run
    /// executed equals the corresponding row of the fixed-`max_k` grid —
    /// the adaptive sample is a prefix, and the K it stops at is exactly
    /// what [`stop_k`] replays from the full sample vector.
    #[test]
    fn live_rule_samples_are_a_prefix_of_the_fixed_grid(
        spec in prop::collection::vec((0u8..4, 0u64..2_000_000), 1..80),
        dist_sel in 0u8..3,
        fault_sel in 0u8..4,
        seed in 0u64..1 << 40,
        target in prop::sample::select(vec![10u32, 100, 500, 2000]),
    ) {
        let cfg = LaunchConfig {
            service_dist: dist_of(dist_sel),
            fault: fault_of(fault_sel),
            seed,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&stream_of(&spec), &cfg);
        let ctl = AdaptiveControl { target_rel_milli: target, min_k: 2, max_k: 9, batch: 3 };
        let adaptive = sweep_ranks_adaptive(&stream, &cfg, &[512], ctl);
        let (_, first, stats) = &adaptive[0];

        // The fixed max_k grid for the same point, one row per replicate.
        let mut plan = BatchPlan::new();
        let id = plan.stream(&stream);
        for r in 0..ctl.max_k {
            plan.push(id, &cfg.clone().with_ranks(512).with_seed(replicate_seed(cfg.seed, r)));
        }
        let grid = plan.execute();
        let samples: Vec<u64> = grid.iter().map(|l| l.time_to_launch_ns).collect();

        let takes_draws = !cfg.service_dist.is_deterministic() || cfg.fault.takes_draws();
        if takes_draws {
            prop_assert_eq!(stats.replicates, stop_k(ctl, &samples));
        } else {
            prop_assert_eq!(stats.replicates, 1, "exact cells keep the clamp");
        }
        prop_assert_eq!(first, &grid[0], "replicate 0 is the series entry either way");

        // And the adaptive run's summary is recomputable from the prefix
        // alone — nothing beyond the stopped-at K influenced it.
        let mut prefix: Vec<u64> = samples[..stats.replicates].to_vec();
        let recomputed = depchaos::launch::LaunchStats::from_samples(&mut prefix);
        prop_assert_eq!(stats, &recomputed);
    }
}

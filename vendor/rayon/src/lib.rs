//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! `par_iter()` entry point the workspace uses and runs it **sequentially**.
//! The call sites are already data-parallel-safe, so swapping the real rayon
//! back in (by deleting this vendor crate and restoring the registry
//! dependency) changes performance only, never results.

pub mod prelude {
    /// Sequential `par_iter()`: any collection whose reference iterates
    /// yields a plain `std` iterator, so downstream `.map().collect()`
    /// chains type-check exactly as with rayon's parallel iterators.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: 'data,
    {
        type Item = <&'data C as IntoIterator>::Item;
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_over_slice_and_vec() {
        let xs = [1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let v = vec![(1usize, "a")];
        assert_eq!(v.par_iter().count(), 1);
    }
}

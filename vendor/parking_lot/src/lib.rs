//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The container this repo builds in has no crates.io access, so the real
//! crate cannot be fetched. This shim provides the subset of the API the
//! workspace uses — `Mutex`/`RwLock` with panic-free, non-`Result` guards —
//! with poisoning mapped to "take the lock anyway" (parking_lot has no
//! poisoning at all, so this matches its semantics on panic-with-lock-held).

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()` never returns
/// a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// `parking_lot::RwLock`: like `std::sync::RwLock` but `read()`/`write()`
/// never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}

//! Offline stand-in for the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` trait names (empty marker traits)
//! and re-exports the no-op derive macros from the vendored `serde_derive`,
//! so `#[derive(Serialize, Deserialize)]` on workspace types compiles
//! without crates.io access. No serialization format ships in this tree, so
//! nothing ever calls through the traits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Blanket impls so generic bounds like `T: Serialize` stay satisfiable.
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

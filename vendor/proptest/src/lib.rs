//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this shim reimplements
//! the slice of proptest the workspace tests use: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, integer-range and regex-string
//! strategies, `Just`, tuples, `prop::collection::{vec, btree_map}`,
//! `prop::sample::select`, `prop::option::of`, `any::<T>()`, the
//! `proptest!` macro, and the `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline shim:
//!
//! * Generation is **deterministic**: case `i` of every test uses a fixed
//!   seed derived from `i`, so failures reproduce without a persistence
//!   file.
//! * No shrinking. A failing case panics with the values' `Debug` output
//!   where available (via the assertion message), not a minimized input.
//! * The regex strategy supports the subset the tests use: literals,
//!   escapes, character classes with ranges, groups, and the `{m}`,
//!   `{m,n}`, `?`, `*`, `+` quantifiers.

pub mod test_runner {
    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64: tiny, seedable, good-enough mixing for test generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(0x1234_5678) }
        }

        /// The per-case rng used by the `proptest!` macro expansion.
        pub fn for_case(case: u64) -> Self {
            TestRng::new(0xdeadbeef ^ case.wrapping_mul(0xa076_1d64_78bd_642f))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                return lo;
            }
            lo + self.next_u64() % (hi - lo)
        }

        pub fn usize_between(&mut self, lo: usize, hi_exclusive: usize) -> usize {
            self.below(lo as u64, hi_exclusive as u64) as usize
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A reusable value generator. Unlike the real crate there is no value
    /// tree: `generate` yields one concrete value per call.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    if self.start >= self.end {
                        return self.start;
                    }
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo >= hi {
                        return lo;
                    }
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Closure-backed strategy — the building block `prop_compose!` expands
    /// to.
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// `&'static str` as a regex-subset string strategy, like the real crate.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_regex(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Minimal `Arbitrary`: types the workspace asks `any::<T>()` for.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `proptest::prelude::any::<T>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    /// Size specification accepted by the collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end.max(r.start) }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: r.end().saturating_add(1) }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_between(self.lo, self.hi_exclusive.max(self.lo + 1))
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicate keys collapse, like the real strategy (the map may
            // come out smaller than the requested size).
            let n = self.size.pick(rng);
            (0..n).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
        }
    }

    /// `prop::collection::btree_map(key, value, size)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop::sample::select on an empty set");
            let i = rng.usize_between(0, self.0.len());
            self.0[i].clone()
        }
    }

    /// `prop::sample::select(values)`: pick one of the given values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        Select(values)
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match the real crate's default: None about a quarter of the time.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod string {
    //! Generator for the regex subset used as string strategies.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        /// Inclusive character ranges (single chars are `(c, c)`).
        Class(Vec<(char, char)>),
        Group(Vec<(Atom, Quant)>),
    }

    #[derive(Debug, Clone, Copy)]
    struct Quant {
        min: usize,
        max: usize,
    }

    const ONE: Quant = Quant { min: 1, max: 1 };

    fn parse_sequence(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(Atom, Quant)> {
        let mut out = Vec::new();
        while let Some(&c) = chars.peek() {
            if c == ')' {
                break;
            }
            chars.next();
            let atom = match c {
                '(' => {
                    let inner = parse_sequence(chars);
                    assert_eq!(chars.next(), Some(')'), "unbalanced group in regex strategy");
                    Atom::Group(inner)
                }
                '[' => Atom::Class(parse_class(chars)),
                '\\' => Atom::Literal(chars.next().expect("dangling escape in regex strategy")),
                other => Atom::Literal(other),
            };
            out.push((atom, parse_quantifier(chars)));
        }
        out
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class in regex strategy");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    return ranges;
                }
                '\\' => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    let esc = chars.next().expect("dangling escape in character class");
                    pending = Some(esc);
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let hi = chars.next().unwrap();
                    ranges.push((lo, hi));
                }
                other => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(other);
                }
            }
        }
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> Quant {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Quant { min: 0, max: 1 }
            }
            Some('*') => {
                chars.next();
                Quant { min: 0, max: 4 }
            }
            Some('+') => {
                chars.next();
                Quant { min: 1, max: 4 }
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => Quant {
                        min: lo.trim().parse().expect("bad {m,n} quantifier"),
                        max: hi.trim().parse().expect("bad {m,n} quantifier"),
                    },
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        Quant { min: n, max: n }
                    }
                }
            }
            _ => ONE,
        }
    }

    fn emit(seq: &[(Atom, Quant)], rng: &mut TestRng, out: &mut String) {
        for (atom, q) in seq {
            let reps = rng.usize_between(q.min, q.max + 1);
            for _ in 0..reps {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 =
                            ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                        let mut pick = rng.below(0, total as u64) as u32;
                        for (lo, hi) in ranges {
                            let span = *hi as u32 - *lo as u32 + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Atom::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }

    /// Generate one string matching `pattern` (the supported subset).
    pub fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let seq = parse_sequence(&mut chars);
        assert!(chars.next().is_none(), "unbalanced ')' in regex strategy {pattern:?}");
        let mut out = String::new();
        emit(&seq, rng, &mut out);
        out
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

/// `prop_compose!`: define a function returning a strategy that draws each
/// `pat in strategy` binding and evaluates the body to the final value.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident $params:tt
        ($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name $params -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);
                )+
                $body
            })
        }
    };
}

/// The test-definition macro: same surface syntax as the real crate, each
/// generated `#[test]` runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case as u64);
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..200 {
            let s = crate::string::generate_regex("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let p = crate::string::generate_regex("(/[a-z.]{0,8}){1,6}/?", &mut rng);
            assert!(p.starts_with('/'), "{p:?}");

            let n = crate::string::generate_regex(
                "[a-z][a-z0-9._-]{0,12}(\\.so)?(\\.[0-9]{1,2})?",
                &mut rng,
            );
            assert!(n.chars().next().unwrap().is_ascii_lowercase(), "{n:?}");
        }
    }

    #[test]
    fn ranges_and_collections_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let n = (2usize..12).generate(&mut rng);
            assert!((2..12).contains(&n));
            let v = prop::collection::vec(0usize..5, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            let picked = prop::sample::select(vec!['x', 'y']).generate(&mut rng);
            assert!(picked == 'x' || picked == 'y');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies, and assertions together.
        #[test]
        fn macro_smoke((n, flag) in (1usize..5, any::<bool>()), s in "[a-z]{2}") {
            prop_assert!((1..5).contains(&n));
            prop_assert_eq!(s.len(), 2);
            let _ = flag;
        }
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain
//! data types but never serializes them through an external format (there is
//! no serde_json in the tree); the derives exist so downstream users of the
//! real crates can. With no crates.io access, these derive macros accept the
//! same attribute positions and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! harness surface the workspace benches use (`Criterion::bench_function`,
//! benchmark groups with `bench_with_input`, `criterion_group!` /
//! `criterion_main!`) over a plain wall-clock loop: a short warm-up, then a
//! fixed sample of timed iterations, reporting mean ns/iter on stdout. No
//! statistics, plots, or baselines — swap the real criterion back in for
//! those; call sites need no changes.

use std::time::Instant;

/// Number of timed iterations per benchmark (after one warm-up call).
const DEFAULT_SAMPLES: usize = 10;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _c: self }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { iters: 0, elapsed_ns: 0, samples };
    f(&mut b);
    let per_iter = if b.iters == 0 { 0 } else { b.elapsed_ns / b.iters as u128 };
    println!("bench {id:<50} {per_iter:>12} ns/iter ({} iters)", b.iters);
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    samples: usize,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += self.samples as u64;
    }
}

/// A group-entry label, `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
